"""Yannakakis-style join-tree multiway joins (traced reference engine).

The binary cascade (:mod:`repro.core.multiway`) pays a fresh padding bound
at every step, so a padded 3+-table query compounds bounds
multiplicatively even when the *final* output is small.  This module
implements the classical alternative for acyclic queries: a **join tree**
whose phases touch every table once and pad only the final output.

Phases (all engines run the same four):

``multiplicity`` (bottom-up, one pass per tree edge)
    For edge ``parent -> child``, compute per parent row the total subtree
    multiplicity ``beta`` of its matching child rows — a band-aware
    sort-and-scan: child rows sorted by ``(key, index)``, prefix sums of
    the child's own multiplicities ``alpha``, and two stabbing queries per
    parent row at ``key - band`` / ``key + band`` folded into one sorted
    pass.  After all child edges of a node are processed its own
    ``alpha`` is the product of its ``beta`` columns; the root's
    ``alpha`` sums to the true output size ``M``.

``finalize`` (top-down decomposition arithmetic)
    Per node, the suffix products ``Q_j`` of its children's ``beta``
    columns — the mixed-radix weights that decompose an output slot's
    local index into one digit per child edge.

``distribute_expand`` (one per node)
    Deliver, for every output slot ``g`` in ``[0, target)``, the node's
    matching row: a positional *stab* of slot coordinates against marker
    rows laid out at the exclusive prefix sums of ``alpha`` (root: input
    order; child: ``(key, index)``-sorted order).  Two oblivious sorts of
    public size ``target + n_node`` per node; the marker payload carries
    the row data, so no data-dependent gather ever runs.

``align_concat``
    Zip the per-node slot columns into output rows.

Padding: only the **root** is padded — one anchor marker whose
multiplicity is ``target - M`` occupies the slot tail, so every phase runs
at the public size ``target`` and real rows fill ``[0, M)`` in canonical
order.  Contrast with the cascade, which pads every intermediate.

Canonical output order (identical across engines, pinned by the
differential suite): slot ``g`` enumerates root rows in input order; each
root row's block enumerates its child-edge digits in edge-list order, each
digit running over matching child rows in ``(key, index)``-sorted order,
recursively weighted by the child's own subtree multiplicity.  This is
*not* the cascade's left-deep order; the two agree as multisets.

Band predicates: each edge carries ``band >= 0`` and matches child rows
with ``|parent_key - child_key| <= band``; ``band=0`` is the equi-join.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InputError
from ..memory.public import PublicArray
from ..memory.tracer import Tracer
from ..obliv.bitonic import bitonic_sort
from ..obliv.compare import SortSpec, item_key
from .padding import (
    DUMMY_HANDLE,
    check_padded_key,
    check_padding,
    exceeds_bound,
)
from .stats import JoinCounters

#: Canonical phase names of the join-tree pipeline.
PHASE_MULTIPLICITY = "multiplicity"
PHASE_FINALIZE = "finalize"
PHASE_EXPAND = "distribute_expand"
PHASE_ALIGN = "align_concat"


@dataclass(frozen=True)
class JoinTreeEdge:
    """One edge of a join tree: ``parent.parent_col (~band) child.child_col``.

    ``parent``/``child`` index the table list; node 0 is always the root.
    ``band=0`` is an equi-join edge; ``band=w`` matches rows with
    ``|parent_key - child_key| <= w``.
    """

    parent: int
    child: int
    parent_col: int
    child_col: int
    band: int = 0


def normalize_edges(edges) -> tuple[JoinTreeEdge, ...]:
    """Accept ``JoinTreeEdge`` objects or 4/5-int sequences."""
    out = []
    for edge in edges:
        if isinstance(edge, JoinTreeEdge):
            out.append(edge)
            continue
        parts = tuple(edge)
        if len(parts) == 4:
            parts = parts + (0,)
        if len(parts) != 5:
            raise InputError(
                "join-tree edges are (parent, child, parent_col, child_col"
                f"[, band]) tuples, got {edge!r}"
            )
        out.append(JoinTreeEdge(*(int(p) for p in parts)))
    return tuple(out)


def validate_join_tree(widths, edges) -> tuple[JoinTreeEdge, ...]:
    """Validate a tree over ``len(widths)`` tables; returns normalized edges.

    ``widths`` are the per-table column counts (public).  Requirements:
    exactly ``T - 1`` edges, node 0 the root, every non-root node the child
    of exactly one edge, every node reachable from the root, key columns in
    range, bands non-negative ints.
    """
    edges = normalize_edges(edges)
    count = len(widths)
    if count < 2:
        raise InputError("a join tree needs at least two tables")
    if len(edges) != count - 1:
        raise InputError(
            f"a join tree over {count} tables needs {count - 1} edges, "
            f"got {len(edges)}"
        )
    seen_children = set()
    for edge in edges:
        for node in (edge.parent, edge.child):
            if not 0 <= node < count:
                raise InputError(
                    f"join-tree edge {edge} references table {node}; "
                    f"only {count} tables were given"
                )
        if edge.child == 0:
            raise InputError("table 0 is the join-tree root; it has no parent")
        if edge.child in seen_children:
            raise InputError(
                f"table {edge.child} is the child of two join-tree edges"
            )
        seen_children.add(edge.child)
        if not 0 <= edge.parent_col < widths[edge.parent]:
            raise InputError(
                f"parent key column {edge.parent_col} out of range for "
                f"table {edge.parent} (width {widths[edge.parent]})"
            )
        if not 0 <= edge.child_col < widths[edge.child]:
            raise InputError(
                f"child key column {edge.child_col} out of range for "
                f"table {edge.child} (width {widths[edge.child]})"
            )
        if edge.band < 0:
            raise InputError(f"join-tree band must be >= 0, got {edge.band}")
    # Reachability from the root makes the edge set a tree.
    topdown_edge_order(edges, count)
    return edges


def topdown_edge_order(edges, count: int | None = None) -> tuple[int, ...]:
    """Edge indices in BFS order from the root (parents before children).

    Deterministic: repeatedly scan the edge list in order, taking every
    edge whose parent is already reached.  Raises when some node is
    unreachable from the root (the edge set is not a tree).
    """
    edges = tuple(edges)
    reached = {0}
    order: list[int] = []
    taken = [False] * len(edges)
    while len(order) < len(edges):
        progressed = False
        for index, edge in enumerate(edges):
            if taken[index] or edge.parent not in reached:
                continue
            taken[index] = True
            reached.add(edge.child)
            order.append(index)
            progressed = True
        if not progressed:
            missing = sorted(
                {e.child for i, e in enumerate(edges) if not taken[i]}
            )
            raise InputError(
                f"join-tree tables {missing} are not reachable from the root"
            )
    if count is not None and len(reached) != count:
        raise InputError("join-tree edges do not span every table")
    return tuple(order)


def child_edge_indices(edges) -> dict[int, tuple[int, ...]]:
    """Per parent node, its child edges' indices in edge-list order."""
    children: dict[int, list[int]] = {}
    for index, edge in enumerate(edges):
        children.setdefault(edge.parent, []).append(index)
    return {parent: tuple(ids) for parent, ids in children.items()}


def join_tree_worst_case(sizes) -> int:
    """The full cross product — the only bound that never aborts."""
    total = 1
    for size in sizes:
        total *= int(size)
    return total


def join_tree_bound(sizes, padding: str | None, bound=None) -> int | None:
    """The single public output bound of a join-tree query, or ``None``.

    This is the join tree's whole padding story: unlike
    :func:`repro.core.padding.cascade_bounds` (one compounding bound per
    binary step), an acyclic query pads **only its final output** — the
    bottom-up/top-down phases never materialise an intermediate relation.
    ``bounded`` clamps the caller's cap to the cross-product worst case.
    """
    padding = check_padding(padding)
    if padding == "revealed":
        return None
    worst = join_tree_worst_case(sizes)
    if padding == "worst_case":
        return worst
    if isinstance(bound, (list, tuple)):
        bound = bound[0] if bound else None
    if bound is None:
        raise InputError('padding="bounded" needs an explicit bound')
    if not isinstance(bound, int) or isinstance(bound, bool) or bound < 0:
        raise InputError(f"padding bounds must be ints >= 0, got {bound!r}")
    return min(bound, worst)


@dataclass
class JoinTreeResult:
    """Output of a join-tree query on any engine.

    ``rows`` are the real output rows — each the concatenation of one row
    per table, in table-index order — in the canonical slot order (see the
    module docstring).  ``m`` is the true output size, ``target`` the
    public padded slot count (``m`` itself under ``"revealed"``).
    """

    rows: list[tuple]
    m: int
    padding: str = "revealed"
    target: int | None = None
    sizes: tuple[int, ...] = ()


def validate_join_tree_tables(tables, edges, padding: str):
    """Shared input validation; returns ``(widths, edges)`` normalized.

    Tables must be non-empty-width row tuples of ints; under padded modes
    every key column must satisfy the reserved-key contract
    (:func:`repro.core.padding.check_padded_key`).
    """
    if not tables or len(tables) < 2:
        raise InputError("a join tree needs at least two tables")
    edges = normalize_edges(edges)
    widths = []
    for index, table in enumerate(tables):
        if len(table):
            width = len(table[0])
        else:
            # An empty table joins to nothing (m = 0), so its width only
            # has to cover the key columns the tree references.
            width = max(
                [1]
                + [e.parent_col + 1 for e in edges if e.parent == index]
                + [e.child_col + 1 for e in edges if e.child == index]
            )
        for row in table:
            if len(row) != width:
                raise InputError(f"table {index} has ragged rows")
        widths.append(width)
    edges = validate_join_tree(widths, edges)
    for edge in edges:
        for node, col in (
            (edge.parent, edge.parent_col),
            (edge.child, edge.child_col),
        ):
            for row in tables[node]:
                key = row[col]
                if padding != "revealed":
                    check_padded_key(key)
                elif isinstance(key, bool) or not isinstance(key, int):
                    raise InputError(
                        "join-tree keys must be dictionary-encoded ints, "
                        f"got {type(key).__name__}"
                    )
    return widths, edges


# -- traced implementation ---------------------------------------------------


_STAB_SORT = SortSpec(item_key(0), item_key(1), item_key(2))
_STAB_UNSORT = SortSpec(item_key(1), item_key(2))


def _stab(
    marker_cells,
    query_coords,
    default_payload,
    tracer,
    stats,
    name: str,
):
    """Positional stab: fill each query with the last marker at or before it.

    ``marker_cells`` are ``(coord, 0, idx, payload)`` tuples already in
    ascending coordinate order (``idx`` their position — the tiebreak that
    makes the network's order total); ``query_coords`` one coordinate per
    slot.  Queries at a marker's exact coordinate stab *that* marker
    (marker tag 0 sorts first); queries before every marker (the dummy
    ``-1`` convention) receive ``default_payload``.  Two oblivious sorts of
    public size ``len(markers) + len(queries)``.  Returns the per-query
    payload list in query order.
    """
    n = len(marker_cells)
    q = len(query_coords)
    cells = PublicArray(n + q, name=name, tracer=tracer)
    for s, cell in enumerate(marker_cells):
        cells.write(s, cell)
    for g, coord in enumerate(query_coords):
        cells.write(n + g, (coord, 1, g, default_payload))
    bitonic_sort(cells, _STAB_SORT, stats=stats)
    carry = default_payload
    for i in range(n + q):
        coord, tag, idx, payload = cells.read(i)
        if tag == 0:
            carry = payload
        else:
            cells.write(i, (coord, tag, idx, carry))
    bitonic_sort(cells, _STAB_UNSORT, stats=stats)
    out = []
    for g in range(q):
        coord, _tag, _idx, payload = cells.read(n + g)
        out.append((coord, payload))
    return out


def oblivious_join_tree(
    tables,
    edges,
    tracer: Tracer | None = None,
    counters: JoinCounters | None = None,
    padding: str | None = None,
    bound=None,
) -> JoinTreeResult:
    """The traced join tree; returns :class:`JoinTreeResult`.

    Every bulk access runs through :class:`~repro.memory.public.PublicArray`
    (sorts are bitonic networks, scans are single linear passes), so the
    emitted trace is a function of the public shapes
    ``(sizes, tree, target)`` only; ``counters`` collects per-phase
    comparator counts and wall time like the binary join's.
    """
    padding = check_padding(padding)
    tracer = tracer if tracer is not None else Tracer()
    counters = counters if counters is not None else JoinCounters()
    tables = [[tuple(row) for row in table] for table in tables]
    widths, edges = validate_join_tree_tables(tables, edges, padding)
    sizes = tuple(len(table) for table in tables)
    count = len(tables)
    children = child_edge_indices(edges)
    order = topdown_edge_order(edges, count)

    # Load inputs and unit multiplicities (initialisation is untraced: the
    # server already holds the tables).
    data = [
        PublicArray(list(table), name=f"JT_T{v}", tracer=tracer)
        for v, table in enumerate(tables)
    ]
    alpha = [
        PublicArray([1] * sizes[v], name=f"JT_A{v}", tracer=tracer)
        for v in range(count)
    ]
    # Per edge: the (beta, start) columns over the parent's rows.
    edge_bs: list[PublicArray | None] = [None] * len(edges)

    # -- bottom-up multiplicity, deepest child edges first -------------------
    with counters.timed(PHASE_MULTIPLICITY), tracer.phase(PHASE_MULTIPLICITY):
        stats = counters.stats(PHASE_MULTIPLICITY)
        for e in reversed(order):
            edge = edges[e]
            v, c = edge.parent, edge.child
            n_v, n_c = sizes[v], sizes[c]
            sc = PublicArray(n_c, name=f"JT_SC{e}", tracer=tracer)
            for s in range(n_c):
                sc.write(s, (data[c].read(s)[edge.child_col], s, alpha[c].read(s)))
            bitonic_sort(sc, _STAB_SORT, stats=stats)
            running = 0
            for s in range(n_c):
                key, handle, a = sc.read(s)
                sc.write(s, (key, handle, a, running + a))
                running += a
            # One combined pass answers both band endpoints per parent row:
            # lo queries (tag 0) read the prefix mass strictly below
            # ``key - band``, hi queries (tag 2) the mass at or below
            # ``key + band``; their difference is beta.
            cells = PublicArray(2 * n_v + n_c, name=f"JT_M{e}", tracer=tracer)
            for t in range(n_v):
                key = data[v].read(t)[edge.parent_col]
                cells.write(t, (key - edge.band, 0, t, 0))
                cells.write(n_v + n_c + t, (key + edge.band, 2, t, 0))
            for s in range(n_c):
                key, _handle, _a, acc = sc.read(s)
                cells.write(n_v + s, (key, 1, s, acc))
            bitonic_sort(cells, _STAB_SORT, stats=stats)
            running = 0
            for i in range(2 * n_v + n_c):
                coord, tag, idx, acc = cells.read(i)
                if tag == 1:
                    running = acc
                else:
                    cells.write(i, (coord, tag, idx, running))
            bitonic_sort(cells, _STAB_UNSORT, stats=stats)
            bs = PublicArray(n_v, name=f"JT_BS{e}", tracer=tracer)
            for t in range(n_v):
                lo = cells.read(t)[3]
                hi = cells.read(n_v + n_c + t)[3]
                bs.write(t, (hi - lo, lo))
            edge_bs[e] = bs
            for t in range(n_v):
                beta, _start = bs.read(t)
                alpha[v].write(t, alpha[v].read(t) * beta)

    m = sum(alpha[0].read(t) for t in range(sizes[0]))
    target = join_tree_bound(sizes, padding, bound)
    if target is None:
        target = m
    else:
        exceeds_bound(m, target)
    padded = padding != "revealed"

    # -- finalize: mixed-radix suffix products per node ----------------------
    # ep[v] holds, per row, the flattened (beta, start, Q) triple per child
    # edge — everything a slot needs to address that node's children.
    ep: list[PublicArray | None] = [None] * count
    with counters.timed(PHASE_FINALIZE), tracer.phase(PHASE_FINALIZE):
        for v in range(count):
            kids = children.get(v, ())
            if not kids:
                continue
            arr = PublicArray(sizes[v], name=f"JT_EP{v}", tracer=tracer)
            for t in range(sizes[v]):
                pairs = [edge_bs[e].read(t) for e in kids]
                flat = []
                suffix = 1
                weights = [1] * len(kids)
                for j in range(len(kids) - 1, -1, -1):
                    weights[j] = suffix
                    suffix *= pairs[j][0]
                for (beta, start), weight in zip(pairs, weights):
                    flat.extend((beta, start, weight))
                arr.write(t, tuple(flat))
            ep[v] = arr

    # -- distribute-expand: one stab per node over all target slots ----------
    # slots[v] holds (handle, sigma, data..., edge params...) per slot.
    slots: list[list[tuple] | None] = [None] * count
    stats = counters.stats(PHASE_EXPAND)
    with counters.timed(PHASE_EXPAND), tracer.phase(PHASE_EXPAND):
        # Root markers at the exclusive prefix of alpha, input order; under
        # padded modes one anchor marker owns the slot tail [m, target).
        marker_cells = []
        position = 0
        for t in range(sizes[0]):
            row = data[0].read(t)
            params = ep[0].read(t) if ep[0] is not None else ()
            marker_cells.append((position, 0, t, (t, position) + row + params))
            position += alpha[0].read(t)
        k0 = len(children.get(0, ()))
        if padded:
            marker_cells.append(
                (
                    m,
                    0,
                    sizes[0],
                    (DUMMY_HANDLE, m)
                    + (DUMMY_HANDLE,) * widths[0]
                    + (0,) * (3 * k0),
                )
            )
        default = (
            (DUMMY_HANDLE, 0) + (DUMMY_HANDLE,) * widths[0] + (0,) * (3 * k0)
        )
        stabbed = _stab(
            marker_cells, range(target), default, tracer, stats, "JT_X0"
        )
        slots[0] = [
            (payload[0], coord - payload[1] if payload[0] != DUMMY_HANDLE else 0)
            + payload[2:]
            for coord, payload in stabbed
        ]

        for e in order:
            edge = edges[e]
            v, c = edge.parent, edge.child
            j = children[v].index(e)
            n_c = sizes[c]
            kc = len(children.get(c, ()))
            # Child markers: (key, index)-sorted rows at the exclusive
            # prefix of alpha-mass, carrying row data and edge params.
            prep = PublicArray(n_c, name=f"JT_P{e}", tracer=tracer)
            for s in range(n_c):
                row = data[c].read(s)
                params = ep[c].read(s) if ep[c] is not None else ()
                prep.write(
                    s,
                    (
                        row[edge.child_col],
                        s,
                        alpha[c].read(s),
                        (s, 0) + row + params,
                    ),
                )
            bitonic_sort(prep, _STAB_SORT, stats=stats)
            marker_cells = []
            running = 0
            for s in range(n_c):
                _key, _handle, a, payload = prep.read(s)
                marker_cells.append(
                    (running, 0, s, payload[:1] + (running,) + payload[2:])
                )
                running += a
            base = 2 + widths[v] + 3 * j
            coords = []
            for g in range(target):
                slot = slots[v][g]
                handle, sigma = slot[0], slot[1]
                beta, start, weight = slot[base], slot[base + 1], slot[base + 2]
                if handle == DUMMY_HANDLE:
                    coords.append(-1)
                else:
                    digit = (sigma // max(weight, 1)) % max(beta, 1)
                    coords.append(start + digit)
            default = (
                (DUMMY_HANDLE, 0) + (DUMMY_HANDLE,) * widths[c] + (0,) * (3 * kc)
            )
            stabbed = _stab(marker_cells, coords, default, tracer, stats, f"JT_X{e}")
            slots[c] = [
                (
                    payload[0],
                    coord - payload[1] if payload[0] != DUMMY_HANDLE else 0,
                )
                + payload[2:]
                for coord, payload in stabbed
            ]

    # -- align-concat + client-side compaction -------------------------------
    with counters.timed(PHASE_ALIGN), tracer.phase(PHASE_ALIGN):
        rows = []
        for g in range(target):
            row: tuple = ()
            for v in range(count):
                row = row + slots[v][g][2 : 2 + widths[v]]
            rows.append(row)
    return JoinTreeResult(
        rows=rows[:m],
        m=m,
        padding=padding,
        target=target if padded else None,
        sizes=sizes,
    )
