"""Database entry layout used by the traced join engine.

The paper's tables hold pairs ``(j, d)`` — a join-attribute value and a data
value — progressively augmented with the group dimensions ``α1, α2``
(Alg. 2), a destination index ``f`` (Alg. 3/4), and an alignment index
``ii`` (Alg. 5).  :class:`Entry` carries all of these in one fixed-shape
record, the unit in which the algorithm reads and writes public memory
("local memory on the order of the size of one database entry", §4.3).

Entries are plain mutable records; algorithm code follows the discipline of
copying before mutating (``entry.copy()``), mirroring the paper's
``e <-? T[i]; ...; T[i] <-? e`` pattern where ``e`` lives in local memory.
"""

from __future__ import annotations

import struct

from ..memory.encryption import Codec


class Entry:
    """One (augmented) database entry.

    Attributes
    ----------
    j / d:
        Join-attribute and data-attribute values (dictionary-encoded ints at
        this layer; :mod:`repro.db` maps richer types onto them).
    tid:
        Originating table id (1 or 2) used during augmentation.
    a1 / a2:
        Group dimensions α1, α2 (how many entries of the entry's join value
        appear in T1 / T2).
    f:
        0-based destination index for oblivious distribution; -1 when unset.
    ii:
        Alignment index of Algorithm 5; -1 when unset.
    null:
        True for ∅ (dummy/discarded) entries.
    """

    __slots__ = ("j", "d", "tid", "a1", "a2", "f", "ii", "null")

    def __init__(
        self,
        j: int = 0,
        d: int = 0,
        tid: int = 0,
        a1: int = 0,
        a2: int = 0,
        f: int = -1,
        ii: int = -1,
        null: bool = False,
    ) -> None:
        self.j = j
        self.d = d
        self.tid = tid
        self.a1 = a1
        self.a2 = a2
        self.f = f
        self.ii = ii
        self.null = null

    @classmethod
    def make_null(cls) -> "Entry":
        """A fresh ∅ entry (all-zero payload, null flag set)."""
        return cls(null=True)

    def copy(self) -> "Entry":
        clone = Entry.__new__(Entry)
        clone.j = self.j
        clone.d = self.d
        clone.tid = self.tid
        clone.a1 = self.a1
        clone.a2 = self.a2
        clone.f = self.f
        clone.ii = self.ii
        clone.null = self.null
        return clone

    @property
    def is_null(self) -> bool:
        return self.null

    def as_pair(self) -> tuple[int, int]:
        return (self.j, self.d)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Entry):
            return NotImplemented
        return (
            self.j == other.j
            and self.d == other.d
            and self.tid == other.tid
            and self.a1 == other.a1
            and self.a2 == other.a2
            and self.f == other.f
            and self.ii == other.ii
            and self.null == other.null
        )

    def __hash__(self) -> int:  # pragma: no cover - entries rarely hashed
        return hash((self.j, self.d, self.tid, self.null))

    def __repr__(self) -> str:
        if self.null:
            return "Entry(∅)"
        extras = []
        if self.tid:
            extras.append(f"tid={self.tid}")
        if self.a1 or self.a2:
            extras.append(f"a1={self.a1}, a2={self.a2}")
        if self.f >= 0:
            extras.append(f"f={self.f}")
        if self.ii >= 0:
            extras.append(f"ii={self.ii}")
        suffix = (", " + ", ".join(extras)) if extras else ""
        return f"Entry(j={self.j}, d={self.d}{suffix})"


def entries_from_pairs(pairs, tid: int = 0) -> list[Entry]:
    """Build entry records from an iterable of ``(j, d)`` pairs."""
    return [Entry(j=j, d=d, tid=tid) for j, d in pairs]


def pairs_from_entries(entries) -> list[tuple[int, int]]:
    """Extract ``(j, d)`` pairs, skipping null entries."""
    return [(e.j, e.d) for e in entries if not e.null]


class EntryCodec(Codec):
    """Fixed-width binary codec so entries can live encrypted at rest.

    Every entry of every table encrypts to the same ciphertext length, so
    cell sizes leak nothing about contents.
    """

    _STRUCT = struct.Struct("<qqqqqqqB")
    WIDTH = _STRUCT.size

    def encode(self, value) -> bytes:
        if value is None:
            value = Entry.make_null()
        return self._STRUCT.pack(
            value.j,
            value.d,
            value.tid,
            value.a1,
            value.a2,
            value.f,
            value.ii,
            1 if value.null else 0,
        )

    def decode(self, data: bytes):
        j, d, tid, a1, a2, f, ii, null = self._STRUCT.unpack(data)
        return Entry(j=j, d=d, tid=tid, a1=a1, a2=a2, f=f, ii=ii, null=bool(null))
