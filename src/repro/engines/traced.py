"""The ``traced`` engine: :mod:`repro.core` behind the Engine protocol.

This is the reference implementation — pure Python, every public-memory
access routed through a :class:`~repro.memory.tracer.Tracer` — so it is the
engine on which obliviousness is *proved* (type system, §6.1 trace-equality
experiments).  All other engines are validated differentially against it.
"""

from __future__ import annotations

from ..core.aggregate import (
    GroupAggregate,
    oblivious_group_by,
    oblivious_join_aggregate,
)
from ..core.join import JoinResult, oblivious_join
from ..core.join_tree import JoinTreeResult, oblivious_join_tree
from ..core.multiway import MultiwayResult, oblivious_multiway_join
from ..memory.public import PublicArray
from ..memory.tracer import Tracer
from ..obliv.bitonic import bitonic_sort
from ..obliv.compact import compact_by_routing
from ..obliv.compare import SortKey, SortSpec
from .base import PaddingOptionsMixin, Pairs


def traced_filter_indices(mask: list[bool], tracer: Tracer | None = None) -> list[int]:
    """Order-preserving compaction of the survivor indices (§3.5 filter).

    The public trace is one linear pass plus the `O(n log n)` routing-based
    compaction; only the survivor count is revealed.
    """
    n = len(mask)
    if n == 0:
        return []
    cells = PublicArray(n, name="FILTER", tracer=tracer)
    for i, keep in enumerate(mask):
        cells.write(i, i if keep else None)
    count = compact_by_routing(cells, lambda c: c is None)
    return [cells.read(i) for i in range(count)]


def traced_order_permutation(
    columns: list[tuple[list, bool]], tracer: Tracer | None = None
) -> list[int]:
    """The stable sort permutation via a traced bitonic sort of key tuples.

    Each cell holds ``(key_0, ..., key_d, position)``; the position is the
    final tiebreak key, which makes the ordering total — so every engine
    computes the identical permutation, regardless of network structure.
    """
    n = len(columns[0][0]) if columns else 0
    if n <= 1:
        return list(range(n))
    cells = PublicArray(n, name="ORDER", tracer=tracer)
    for i in range(n):
        cells.write(i, tuple(values[i] for values, _ in columns) + (i,))
    spec = SortSpec(
        *(
            SortKey(getter=lambda c, _x=x: c[_x], ascending=asc, name=f"k{x}")
            for x, (_, asc) in enumerate(columns)
        ),
        SortKey(getter=lambda c: c[-1], name="pos"),
    )
    bitonic_sort(cells, spec)
    return [cells.read(i)[-1] for i in range(n)]


class TracedEngine(PaddingOptionsMixin):
    """Reference engine with per-access tracing (the paper's prototype)."""

    name = "traced"

    def __init__(self, padding: str | None = None, bound=None) -> None:
        self._init_padding(padding, bound)

    def with_options(self, **options) -> "TracedEngine":
        """A configured copy; unknown options are rejected loudly."""
        self._check_options(options)
        return TracedEngine(
            padding=options.get("padding", self.padding),
            bound=options.get("bound", self.bound),
        )

    def join(
        self,
        left: Pairs,
        right: Pairs,
        tracer: Tracer | None = None,
        target_m: int | None = None,
    ) -> JoinResult:
        return oblivious_join(
            left, right, tracer=tracer, target_m=self._join_target(left, right, target_m)
        )

    def multiway_join(
        self,
        tables: list[list[tuple]],
        keys: list[tuple[int, int]],
        tracer: Tracer | None = None,
        padding: str | None = None,
        bound=None,
    ) -> MultiwayResult:
        padding, bound = self._cascade_padding(padding, bound)
        return oblivious_multiway_join(
            tables, keys, tracer=tracer, padding=padding, bound=bound
        )

    def join_tree(
        self,
        tables: list[list[tuple]],
        edges,
        tracer: Tracer | None = None,
        padding: str | None = None,
        bound=None,
    ) -> JoinTreeResult:
        padding, bound = self._cascade_padding(padding, bound)
        return oblivious_join_tree(
            tables, edges, tracer=tracer, padding=padding, bound=bound
        )

    def aggregate(
        self, left: Pairs, right: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]:
        return oblivious_join_aggregate(left, right, tracer=tracer)

    def group_by(
        self, table: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]:
        return oblivious_group_by(table, tracer=tracer)

    def filter_indices(
        self, mask: list[bool], tracer: Tracer | None = None
    ) -> list[int]:
        return traced_filter_indices(mask, tracer=tracer)

    def order_permutation(
        self, columns: list[tuple[list, bool]], tracer: Tracer | None = None
    ) -> list[int]:
        return traced_order_permutation(columns, tracer=tracer)
