"""The ``traced`` engine: :mod:`repro.core` behind the Engine protocol.

This is the reference implementation — pure Python, every public-memory
access routed through a :class:`~repro.memory.tracer.Tracer` — so it is the
engine on which obliviousness is *proved* (type system, §6.1 trace-equality
experiments).  All other engines are validated differentially against it.
"""

from __future__ import annotations

from ..core.aggregate import (
    GroupAggregate,
    oblivious_group_by,
    oblivious_join_aggregate,
)
from ..core.join import JoinResult, oblivious_join
from ..core.multiway import MultiwayResult, oblivious_multiway_join
from ..memory.tracer import Tracer
from .base import Pairs


class TracedEngine:
    """Reference engine with per-access tracing (the paper's prototype)."""

    name = "traced"

    def join(
        self, left: Pairs, right: Pairs, tracer: Tracer | None = None
    ) -> JoinResult:
        return oblivious_join(left, right, tracer=tracer)

    def multiway_join(
        self,
        tables: list[list[tuple]],
        keys: list[tuple[int, int]],
        tracer: Tracer | None = None,
    ) -> MultiwayResult:
        return oblivious_multiway_join(tables, keys, tracer=tracer)

    def aggregate(
        self, left: Pairs, right: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]:
        return oblivious_join_aggregate(left, right, tracer=tracer)

    def group_by(
        self, table: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]:
        return oblivious_group_by(table, tracer=tracer)
