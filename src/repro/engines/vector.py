"""The ``vector`` engine: :mod:`repro.vector` behind the Engine protocol.

The numpy fast path for every workload.  Outputs are bit-identical to the
``traced`` engine (enforced by the differential suite); there is no
per-access trace — the ``tracer`` parameters are accepted for interface
compatibility and ignored, because the adversary-visible behaviour of this
engine is its primitive schedule (``Vector*Stats.schedule``), which depends
only on public sizes.
"""

from __future__ import annotations

from ..core.aggregate import GroupAggregate
from ..core.join import JoinResult
from ..core.multiway import MultiwayResult
from ..memory.tracer import Tracer
from ..vector.aggregate import vector_group_by, vector_join_aggregate
from ..vector.join import vector_oblivious_join
from ..vector.multiway import vector_multiway_join
from .base import Pairs


class VectorEngine:
    """Vectorised engine: whole-array numpy primitives, identical outputs."""

    name = "vector"

    def join(
        self, left: Pairs, right: Pairs, tracer: Tracer | None = None
    ) -> JoinResult:
        pairs, stats = vector_oblivious_join(left, right)
        return JoinResult(
            pairs=[tuple(p) for p in pairs.tolist()],
            m=stats.m,
            n1=len(left),
            n2=len(right),
        )

    def multiway_join(
        self,
        tables: list[list[tuple]],
        keys: list[tuple[int, int]],
        tracer: Tracer | None = None,
    ) -> MultiwayResult:
        return vector_multiway_join(tables, keys)

    def aggregate(
        self, left: Pairs, right: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]:
        return vector_join_aggregate(left, right)

    def group_by(
        self, table: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]:
        return vector_group_by(table)
