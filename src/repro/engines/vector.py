"""The ``vector`` engine: :mod:`repro.vector` behind the Engine protocol.

The numpy fast path for every workload.  Outputs are bit-identical to the
``traced`` engine (enforced by the differential suite); there is no
per-access trace — the ``tracer`` parameters are accepted for interface
compatibility and ignored, because the adversary-visible behaviour of this
engine is its primitive schedule (``Vector*Stats.schedule``), which depends
only on public sizes.
"""

from __future__ import annotations

from ..core.aggregate import GroupAggregate
from ..core.join import JoinResult
from ..core.multiway import MultiwayResult
from ..errors import InputError
from ..memory.tracer import Tracer
from ..vector.aggregate import vector_group_by, vector_join_aggregate
from ..core.join_tree import JoinTreeResult
from ..vector.join import vector_oblivious_join
from ..vector.join_tree import vector_join_tree
from ..vector.multiway import vector_multiway_join
from ..vector.relational import vector_filter_indices, vector_order_permutation
from .base import PaddingOptionsMixin, Pairs
from .traced import traced_order_permutation


class VectorEngine(PaddingOptionsMixin):
    """Vectorised engine: whole-array numpy primitives, identical outputs."""

    name = "vector"

    def __init__(self, padding: str | None = None, bound=None) -> None:
        self._init_padding(padding, bound)

    def with_options(self, **options) -> "VectorEngine":
        """A configured copy; unknown options are rejected loudly."""
        self._check_options(options)
        return VectorEngine(
            padding=options.get("padding", self.padding),
            bound=options.get("bound", self.bound),
        )

    def join(
        self,
        left: Pairs,
        right: Pairs,
        tracer: Tracer | None = None,
        target_m: int | None = None,
    ) -> JoinResult:
        pairs, stats = vector_oblivious_join(
            left, right, target_m=self._join_target(left, right, target_m)
        )
        return JoinResult(
            pairs=[tuple(p) for p in pairs.tolist()],
            m=stats.m,
            n1=len(left),
            n2=len(right),
        )

    def multiway_join(
        self,
        tables: list[list[tuple]],
        keys: list[tuple[int, int]],
        tracer: Tracer | None = None,
        padding: str | None = None,
        bound=None,
    ) -> MultiwayResult:
        padding, bound = self._cascade_padding(padding, bound)
        return vector_multiway_join(tables, keys, padding=padding, bound=bound)

    def join_tree(
        self,
        tables: list[list[tuple]],
        edges,
        tracer: Tracer | None = None,
        padding: str | None = None,
        bound=None,
    ) -> JoinTreeResult:
        padding, bound = self._cascade_padding(padding, bound)
        result, _stats = vector_join_tree(
            tables, edges, padding=padding, bound=bound
        )
        return result

    def aggregate(
        self, left: Pairs, right: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]:
        return vector_join_aggregate(left, right)

    def group_by(
        self, table: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]:
        return vector_group_by(table)

    def filter_indices(
        self, mask: list[bool], tracer: Tracer | None = None
    ) -> list[int]:
        return vector_filter_indices(mask)

    def order_permutation(
        self, columns: list[tuple[list, bool]], tracer: Tracer | None = None
    ) -> list[int]:
        n = len(columns[0][0]) if columns else 0
        try:
            return vector_order_permutation(columns, n)
        except InputError:
            # Non-int64 sort keys (e.g. string columns): the traced network
            # computes the identical stable permutation, just slower.
            return traced_order_permutation(columns, tracer=tracer)
