"""Pluggable execution engines for every oblivious workload.

Usage::

    from repro.engines import get_engine

    engine = get_engine("vector")               # or "traced" / "sharded"
    engine = get_engine("sharded", workers=4)   # engines with knobs
    engine = get_engine("vector", padding="worst_case")  # hide result sizes
    result = engine.join(left, right)           # same results on every engine

The registry is the architectural seam future backends plug into: implement
the :class:`Engine` protocol, call :func:`register_engine`, and the db
layer, CLI (``--engine``), and differential test suite pick the engine up
by name.

Picking an engine
-----------------
All engines produce bit-identical results (the cross-engine differential
suite in ``tests/test_engines.py`` and ``tests/test_engine_properties.py``
enforces it); they differ in speed, leakage granularity, and parallelism.
All three also support *padded execution* —
``get_engine(name, padding="bounded"|"worst_case", bound=...)`` — which
hides result sizes (including every multiway intermediate, the sharded
``m_ij`` grid, and per-shard partial group counts) behind public bounds;
``docs/leakage.md`` is the full leakage-profile table.

``traced``
    The reference. Pure Python, every public-memory access routed through a
    :class:`~repro.memory.tracer.Tracer` — the engine security proofs and
    the §6.1 trace-equality experiments run on.  Slowest by ~10^3x; the only
    engine whose adversary view is a per-access trace.  Use it for security
    experiments and as the differential oracle, not for throughput.

``vector``
    The numpy fast path: whole-array bitonic/routing networks whose
    schedule depends only on public sizes.  The default choice for
    benchmarks and production-sized single-process runs.  Its adversary
    view is the primitive schedule (``Vector*Stats.schedule``).

``sharded``
    The multi-process scale-out path: inputs split into ``shards`` equal,
    padded, position-based partitions; the public schedule compiled into a
    :class:`~repro.plan.ir.Plan` up front; the vector primitives run per
    shard on a pluggable *executor* (``executor="inline"|"pool"|"async"``
    — calling process, shared-memory process pool, or asyncio overlap);
    a bitonic merge reassembles the result.  Aggregation/GROUP BY/FILTER
    do strictly *less* total comparator work than single-shot vector
    (``k`` smaller networks); the binary join runs a ``shards**2`` task
    grid — more total work, but embarrassingly parallel, so it wins
    wall-clock once ``workers`` processes land on real cores.
    Additionally reveals the per-task output-size grid (``m_ij``),
    per-shard partial group counts, and per-shard filter survivor counts
    (all folded into public bounds under padded modes) — the positional
    analogue of the multiway cascade's revealed intermediate sizes.
    Prefer it at ``n >= 2^14`` on multi-core hardware; knobs via
    ``get_engine("sharded", shards=K, workers=N, executor="pool")``.

Every engine also *emits* its public schedule before execution:
``engine.compile_plan(workload, **shapes)`` returns the serializable
:class:`~repro.plan.ir.Plan` the run will follow (``python -m repro plan``
prints it) — plan equality across same-shape inputs is the obliviousness
contract, tested in ``tests/test_plan.py``.
"""

from .base import (
    Engine,
    Pairs,
    available_engines,
    engine_option_names,
    get_engine,
    register_engine,
)
from .sharded import ShardedEngine
from .traced import TracedEngine
from .vector import VectorEngine

#: The three in-tree engines, registered at import time.
TRACED_ENGINE = register_engine(TracedEngine())
VECTOR_ENGINE = register_engine(VectorEngine())
SHARDED_ENGINE = register_engine(ShardedEngine())

__all__ = [
    "Engine",
    "Pairs",
    "available_engines",
    "engine_option_names",
    "get_engine",
    "register_engine",
    "ShardedEngine",
    "TracedEngine",
    "VectorEngine",
    "SHARDED_ENGINE",
    "TRACED_ENGINE",
    "VECTOR_ENGINE",
]
