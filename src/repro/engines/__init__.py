"""Pluggable execution engines for every oblivious workload.

Usage::

    from repro.engines import get_engine

    engine = get_engine("vector")          # or "traced"
    result = engine.join(left, right)      # same results on every engine

The registry is the architectural seam future backends plug into: implement
the :class:`Engine` protocol, call :func:`register_engine`, and the db
layer, CLI (``--engine``), and differential test suite pick the engine up
by name.
"""

from .base import Engine, Pairs, available_engines, get_engine, register_engine
from .traced import TracedEngine
from .vector import VectorEngine

#: The two in-tree engines, registered at import time.
TRACED_ENGINE = register_engine(TracedEngine())
VECTOR_ENGINE = register_engine(VectorEngine())

__all__ = [
    "Engine",
    "Pairs",
    "available_engines",
    "get_engine",
    "register_engine",
    "TracedEngine",
    "VectorEngine",
    "TRACED_ENGINE",
    "VECTOR_ENGINE",
]
