"""The ``sharded`` engine: :mod:`repro.shard` behind the Engine protocol.

The first backend to carry a genuinely new *execution strategy* through the
engine seam: every workload is split into equal, padded, position-based
shards (:mod:`repro.shard.partition`), its public schedule is compiled into
a plan up front (:mod:`repro.plan.compile`), and the plan's tasks run on a
pluggable executor (:mod:`repro.plan.executors`) whose completed results
*stream* into a bitonic merge tournament (:mod:`repro.shard.merge`) that
reassembles the bit-identical result — runs fold in as their producing
tasks finish, and the tournament's pairwise merges are themselves executor
tasks, so no single-process barrier sits between the grid and the output.

Five knobs:

``shards``
    How many partitions each input is split into.  The binary join runs
    the full ``shards**2`` grid of shard pairs; aggregation, GROUP BY and
    FILTER run one task per shard.  Defaults to ``max(2, workers)`` so the
    task grid always saturates the pool.
``workers``
    Parallelism of the executor.  ``workers=1`` defaults to the inline
    executor — deterministic, fork-free, what the test suite uses;
    ``workers>1`` defaults to the shared-memory process pool.
``executor``
    The execution substrate, overriding the workers-derived default:
    ``"inline"`` (calling process), ``"pool"`` (persistent process pool
    with shared-memory column transport — shard payloads are not pickled,
    and merge-tournament runs stay cached in shared memory between
    rounds), ``"async"`` (asyncio overlap of shard compute and result
    gather, same shared-memory transport), or ``"shuffle"`` (inline
    compute completing in adversarially shuffled order — the validation
    substrate for the streaming seam).  Executors cannot change results
    or leakage, only wall-clock; the executor-parametrised differential
    suite pins the former.
``padding`` / ``bound``
    Padded execution (:mod:`repro.core.padding`).  This engine's extra
    reveals — the join's per-task ``m_ij`` grid, aggregation's per-shard
    partial group counts, and FILTER's per-shard survivor counts — fold
    into the same padded story: under ``"bounded"``/``"worst_case"`` every
    grid task, partial table and survivor block runs at its public worst
    case, so the schedule reveals only ``(n1, n2, k)`` and the bounds
    (``docs/leakage.md``).

Configured copies come from :func:`repro.engines.get_engine`::

    get_engine("sharded", shards=4, workers=4, executor="async",
               padding="worst_case")

or equivalently ``ObliviousEngine(engine="sharded", shards=4, workers=4)``
and ``--engine sharded --workers 4 --executor pool`` on the CLI.
"""

from __future__ import annotations

from ..core.aggregate import GroupAggregate
from ..core.join import JoinResult
from ..core.multiway import MultiwayResult
from ..errors import InputError
from ..memory.tracer import Tracer
from ..plan.executors import check_workers, resolve_executor
from ..plan.partition import check_expand_segments, check_shards
from ..core.join_tree import JoinTreeResult
from ..shard.aggregate import sharded_group_by, sharded_join_aggregate
from ..shard.join import sharded_oblivious_join
from ..shard.join_tree import sharded_join_tree
from ..shard.multiway import sharded_multiway_join
from ..shard.pipeline import PipelineResult, PipelineStats, streamed_pipeline
from ..shard.relational import sharded_filter_indices, sharded_order_permutation
from .base import PaddingOptionsMixin, Pairs
from .traced import traced_order_permutation


class ShardedEngine(PaddingOptionsMixin):
    """Sharded multi-process engine: padded partitions, identical outputs."""

    name = "sharded"
    OPTIONS = (
        "shards",
        "workers",
        "executor",
        "padding",
        "bound",
        "expand_segments",
    )

    def __init__(
        self,
        shards: int | None = None,
        workers: int = 1,
        executor: str | None = None,
        padding: str | None = None,
        bound=None,
        expand_segments: int | None = None,
    ) -> None:
        self.workers = check_workers(workers)
        self._shards = None if shards is None else check_shards(shards)
        self._executor_name = executor
        # Resolve eagerly so an unknown name fails at configuration time.
        self.executor = resolve_executor(executor, workers=self.workers)
        self.expand_segments = (
            None
            if expand_segments is None
            else check_expand_segments(expand_segments)
        )
        self._init_padding(padding, bound)

    @property
    def shards(self) -> int:
        """Partitions per input: explicit, or ``max(2, workers)``."""
        return self._shards if self._shards is not None else max(2, self.workers)

    def with_options(self, **options) -> "ShardedEngine":
        """A configured copy; unknown options are rejected loudly."""
        self._check_options(options)
        return ShardedEngine(
            shards=options.get("shards", self._shards),
            workers=options.get("workers", self.workers),
            executor=options.get("executor", self._executor_name),
            padding=options.get("padding", self.padding),
            bound=options.get("bound", self.bound),
            expand_segments=options.get("expand_segments", self.expand_segments),
        )

    def join(
        self,
        left: Pairs,
        right: Pairs,
        tracer: Tracer | None = None,
        target_m: int | None = None,
    ) -> JoinResult:
        pairs, stats = sharded_oblivious_join(
            left,
            right,
            shards=self.shards,
            target_m=self._join_target(left, right, target_m),
            executor=self.executor,
            expand_segments=self.expand_segments,
        )
        return JoinResult(
            pairs=[tuple(p) for p in pairs.tolist()],
            m=stats.m,
            n1=len(left),
            n2=len(right),
        )

    def multiway_join(
        self,
        tables: list[list[tuple]],
        keys: list[tuple[int, int]],
        tracer: Tracer | None = None,
        padding: str | None = None,
        bound=None,
    ) -> MultiwayResult:
        padding, bound = self._cascade_padding(padding, bound)
        return sharded_multiway_join(
            tables,
            keys,
            shards=self.shards,
            padding=padding,
            bound=bound,
            executor=self.executor,
            expand_segments=self.expand_segments,
        )

    def join_tree(
        self,
        tables: list[list[tuple]],
        edges,
        tracer: Tracer | None = None,
        padding: str | None = None,
        bound=None,
    ) -> JoinTreeResult:
        padding, bound = self._cascade_padding(padding, bound)
        result, _stats = sharded_join_tree(
            tables,
            edges,
            shards=self.shards,
            workers=self.workers,
            executor=self.executor,
            padding=padding,
            bound=bound,
            expand_segments=self.expand_segments,
        )
        return result

    def aggregate(
        self, left: Pairs, right: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]:
        return sharded_join_aggregate(
            left,
            right,
            shards=self.shards,
            padded=self.padding != "revealed",
            executor=self.executor,
        )

    def group_by(
        self, table: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]:
        return sharded_group_by(
            table,
            shards=self.shards,
            padded=self.padding != "revealed",
            executor=self.executor,
        )

    def filter_indices(
        self, mask: list[bool], tracer: Tracer | None = None
    ) -> list[int]:
        return sharded_filter_indices(
            mask,
            shards=self.shards,
            padded=self.padding != "revealed",
            executor=self.executor,
        )

    def order_permutation(
        self, columns: list[tuple[list, bool]], tracer: Tracer | None = None
    ) -> list[int]:
        n = len(columns[0][0]) if columns else 0
        try:
            return sharded_order_permutation(
                columns, n, shards=self.shards, executor=self.executor
            )
        except InputError:
            return traced_order_permutation(columns, tracer=tracer)

    def pipeline(
        self, stages, tracer: Tracer | None = None
    ) -> PipelineResult:
        """Run the chain with streaming block channels between operators.

        In revealed mode, inter-operator edges stream: a downstream shard
        task dispatches the moment its upstream block completes
        (:func:`repro.shard.pipeline.streamed_pipeline`), and on remote
        executors the block's columns travel worker-to-worker through
        shared memory without a parent round-trip.  Padded modes fall back
        to the operator-at-a-time reference path — streaming per-block
        completions would reveal exactly the sizes padding exists to hide.
        Both paths return bit-identical rows/groups.
        """
        if self.padding != "revealed":
            return super().pipeline(stages, tracer=tracer)
        stats = PipelineStats()
        return streamed_pipeline(
            stages,
            shards=self.shards,
            workers=self.workers,
            executor=self.executor,
            stats=stats,
        )
