"""The ``sharded`` engine: :mod:`repro.shard` behind the Engine protocol.

The first backend to carry a genuinely new *execution strategy* through the
engine seam: every workload is split into equal, padded, position-based
shards (:mod:`repro.shard.partition`), the vector engine's column-layout
primitives run per shard on a multiprocessing pool
(:mod:`repro.shard.executor`), and a bitonic merge tournament
(:mod:`repro.shard.merge`) reassembles the bit-identical result.

Two knobs:

``shards``
    How many partitions each input is split into.  The binary join runs
    the full ``shards**2`` grid of shard pairs; aggregation, GROUP BY and
    FILTER run one task per shard.  Defaults to ``max(2, workers)`` so the
    task grid always saturates the pool.
``workers``
    Pool size.  ``workers=1`` (the registered default) executes the task
    list inline — deterministic, fork-free, and what the test suite uses;
    ``workers>1`` forks a pool and is where multi-core wall-clock wins
    come from.

Configured copies come from :func:`repro.engines.get_engine`::

    get_engine("sharded", shards=4, workers=4)

or equivalently ``ObliviousEngine(engine="sharded", shards=4, workers=4)``
and ``--engine sharded --workers 4`` on the CLI.
"""

from __future__ import annotations

from ..core.aggregate import GroupAggregate
from ..core.join import JoinResult
from ..core.multiway import MultiwayResult
from ..errors import InputError
from ..memory.tracer import Tracer
from ..shard.aggregate import sharded_group_by, sharded_join_aggregate
from ..shard.executor import check_workers
from ..shard.join import sharded_oblivious_join
from ..shard.multiway import sharded_multiway_join
from ..shard.partition import check_shards
from ..shard.relational import sharded_filter_indices, sharded_order_permutation
from .base import Pairs
from .traced import traced_order_permutation


class ShardedEngine:
    """Sharded multi-process engine: padded partitions, identical outputs."""

    name = "sharded"

    def __init__(self, shards: int | None = None, workers: int = 1) -> None:
        self.workers = check_workers(workers)
        self._shards = None if shards is None else check_shards(shards)

    @property
    def shards(self) -> int:
        """Partitions per input: explicit, or ``max(2, workers)``."""
        return self._shards if self._shards is not None else max(2, self.workers)

    def with_options(self, **options) -> "ShardedEngine":
        """A configured copy; unknown options are rejected loudly."""
        unknown = set(options) - {"shards", "workers"}
        if unknown:
            raise InputError(
                f"sharded engine options are 'shards' and 'workers', "
                f"got {sorted(unknown)}"
            )
        return ShardedEngine(
            shards=options.get("shards", self._shards),
            workers=options.get("workers", self.workers),
        )

    def join(
        self, left: Pairs, right: Pairs, tracer: Tracer | None = None
    ) -> JoinResult:
        pairs, stats = sharded_oblivious_join(
            left, right, shards=self.shards, workers=self.workers
        )
        return JoinResult(
            pairs=[tuple(p) for p in pairs.tolist()],
            m=stats.m,
            n1=len(left),
            n2=len(right),
        )

    def multiway_join(
        self,
        tables: list[list[tuple]],
        keys: list[tuple[int, int]],
        tracer: Tracer | None = None,
    ) -> MultiwayResult:
        return sharded_multiway_join(
            tables, keys, shards=self.shards, workers=self.workers
        )

    def aggregate(
        self, left: Pairs, right: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]:
        return sharded_join_aggregate(
            left, right, shards=self.shards, workers=self.workers
        )

    def group_by(
        self, table: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]:
        return sharded_group_by(table, shards=self.shards, workers=self.workers)

    def filter_indices(
        self, mask: list[bool], tracer: Tracer | None = None
    ) -> list[int]:
        return sharded_filter_indices(
            mask, shards=self.shards, workers=self.workers
        )

    def order_permutation(
        self, columns: list[tuple[list, bool]], tracer: Tracer | None = None
    ) -> list[int]:
        n = len(columns[0][0]) if columns else 0
        try:
            return sharded_order_permutation(
                columns, n, shards=self.shards, workers=self.workers
            )
        except InputError:
            return traced_order_permutation(columns, tracer=tracer)