"""The :class:`Engine` protocol and the process-wide engine registry.

An *engine* is one complete implementation of the library's oblivious
workloads — binary join, multiway cascade, and grouped aggregation — behind
a uniform call surface.  Two engines ship in-tree:

``traced``
    :mod:`repro.core`, faithful to the paper at single-memory-access
    granularity; the one security proofs and §6.1 trace experiments run on.
``vector``
    :mod:`repro.vector`, numpy whole-array primitives with bit-identical
    outputs; the one benchmarks and production-sized runs use.

Every registered engine must produce identical results on identical inputs
(`tests/test_engines.py` enforces this differentially), which is what makes
the registry a safe seam for future backends (sharded, async,
multi-process) to plug into.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..core.aggregate import GroupAggregate
from ..core.join import JoinResult
from ..core.multiway import MultiwayResult
from ..errors import InputError
from ..memory.tracer import Tracer

#: A table in the paper's model: a list of ``(join_value, data_value)`` pairs.
Pairs = list[tuple[int, int]]


@runtime_checkable
class Engine(Protocol):
    """Uniform entry points every execution engine implements.

    Engines that have no per-access trace (the vector engine) accept and
    ignore ``tracer``; their adversary view is the primitive schedule
    instead.
    """

    name: str

    def join(
        self, left: Pairs, right: Pairs, tracer: Tracer | None = None
    ) -> JoinResult: ...

    def multiway_join(
        self,
        tables: list[list[tuple]],
        keys: list[tuple[int, int]],
        tracer: Tracer | None = None,
    ) -> MultiwayResult: ...

    def aggregate(
        self, left: Pairs, right: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]: ...

    def group_by(
        self, table: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]: ...


_REGISTRY: dict[str, Engine] = {}


def register_engine(engine: Engine) -> Engine:
    """Register ``engine`` under ``engine.name``; returns it for chaining."""
    if not engine.name:
        raise InputError("engines must carry a non-empty name")
    _REGISTRY[engine.name] = engine
    return engine


def get_engine(engine: str | Engine) -> Engine:
    """Resolve an engine by name (or pass an instance straight through)."""
    if not isinstance(engine, str):
        return engine
    try:
        return _REGISTRY[engine]
    except KeyError:
        raise InputError(
            f"unknown engine {engine!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def available_engines() -> list[str]:
    """Sorted names of all registered engines."""
    return sorted(_REGISTRY)
