"""The :class:`Engine` protocol and the process-wide engine registry.

An *engine* is one complete implementation of the library's oblivious
workloads — binary join, multiway cascade, and grouped aggregation — behind
a uniform call surface.  Two engines ship in-tree:

``traced``
    :mod:`repro.core`, faithful to the paper at single-memory-access
    granularity; the one security proofs and §6.1 trace experiments run on.
``vector``
    :mod:`repro.vector`, numpy whole-array primitives with bit-identical
    outputs; the one benchmarks and production-sized runs use.

Every registered engine must produce identical results on identical inputs
(`tests/test_engines.py` enforces this differentially), which is what makes
the registry a safe seam for future backends (sharded, async,
multi-process) to plug into.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..core.aggregate import GroupAggregate
from ..core.join import JoinResult
from ..core.multiway import MultiwayResult
from ..errors import InputError
from ..memory.tracer import Tracer

#: A table in the paper's model: a list of ``(join_value, data_value)`` pairs.
Pairs = list[tuple[int, int]]


@runtime_checkable
class Engine(Protocol):
    """Uniform entry points every execution engine implements.

    Engines that have no per-access trace (the vector and sharded engines)
    accept and ignore ``tracer``; their adversary view is the primitive
    schedule instead.

    ``filter_indices`` and ``order_permutation`` are the index-level
    primitives behind the db layer's FILTER and ORDER BY.  The order-by
    contract is a *stable* sort (original position breaks ties), which
    makes the permutation engine-independent and keeps the differential
    suite's bit-identical guarantee.
    """

    name: str

    def join(
        self, left: Pairs, right: Pairs, tracer: Tracer | None = None
    ) -> JoinResult: ...

    def multiway_join(
        self,
        tables: list[list[tuple]],
        keys: list[tuple[int, int]],
        tracer: Tracer | None = None,
    ) -> MultiwayResult: ...

    def aggregate(
        self, left: Pairs, right: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]: ...

    def group_by(
        self, table: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]: ...

    def filter_indices(
        self, mask: list[bool], tracer: Tracer | None = None
    ) -> list[int]: ...

    def order_permutation(
        self,
        columns: list[tuple[list, bool]],
        tracer: Tracer | None = None,
    ) -> list[int]: ...


_REGISTRY: dict[str, Engine] = {}


def register_engine(engine: Engine) -> Engine:
    """Register ``engine`` under ``engine.name``; returns it for chaining."""
    if not engine.name:
        raise InputError("engines must carry a non-empty name")
    _REGISTRY[engine.name] = engine
    return engine


def get_engine(engine: str | Engine, **options) -> Engine:
    """Resolve an engine by name (or pass an instance straight through).

    Keyword options (e.g. ``workers=4, shards=4`` for the sharded engine)
    are forwarded to the engine's ``with_options`` hook, which returns a
    configured copy; engines without the hook reject any options.
    """
    if isinstance(engine, str):
        try:
            engine = _REGISTRY[engine]
        except KeyError:
            raise InputError(
                f"unknown engine {engine!r}; available: {', '.join(sorted(_REGISTRY))}"
            ) from None
    if not options:
        return engine
    configure = getattr(engine, "with_options", None)
    if configure is None:
        raise InputError(
            f"engine {engine.name!r} accepts no options, got {sorted(options)}"
        )
    return configure(**options)


def available_engines() -> list[str]:
    """Sorted names of all registered engines."""
    return sorted(_REGISTRY)
