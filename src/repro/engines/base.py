"""The :class:`Engine` protocol and the process-wide engine registry.

An *engine* is one complete implementation of the library's oblivious
workloads — binary join, multiway cascade, and grouped aggregation — behind
a uniform call surface.  Two engines ship in-tree:

``traced``
    :mod:`repro.core`, faithful to the paper at single-memory-access
    granularity; the one security proofs and §6.1 trace experiments run on.
``vector``
    :mod:`repro.vector`, numpy whole-array primitives with bit-identical
    outputs; the one benchmarks and production-sized runs use.

Every registered engine must produce identical results on identical inputs
(`tests/test_engines.py` enforces this differentially), which is what makes
the registry a safe seam for future backends (sharded, async,
multi-process) to plug into.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..core.aggregate import GroupAggregate
from ..core.join import JoinResult
from ..core.join_tree import JoinTreeResult
from ..core.multiway import MultiwayResult
from ..core.padding import check_padding, compact_pairs, join_bound
from ..errors import InputError
from ..memory.tracer import Tracer
from ..plan.compile import compile_pipeline
from ..plan.compile import compile_workload
from ..plan.ir import Plan
from ..shard.pipeline import PipelineResult, PipelineStats, check_pipeline_stages

#: A table in the paper's model: a list of ``(join_value, data_value)`` pairs.
Pairs = list[tuple[int, int]]


class PaddingOptionsMixin:
    """Shared ``padding`` / ``bound`` engine configuration.

    Engines default to ``padding="revealed"``; a configured copy from
    ``get_engine(name, padding=..., bound=...)`` pads every join and
    multiway cascade it runs (:mod:`repro.core.padding`).  Aggregation
    obeys the flag where it leaks more than the output size (the sharded
    engine's partial group counts); the traced/vector aggregations already
    reveal only the final group count, so the flag changes nothing there.
    Backends extend ``OPTIONS`` with their own knobs (the sharded engine
    adds ``shards``/``workers``).
    """

    OPTIONS = ("padding", "bound")

    def _init_padding(self, padding: str | None, bound) -> None:
        self.padding = check_padding(padding)
        self.bound = bound

    def _join_target(self, left: Pairs, right: Pairs, target_m: int | None):
        if target_m is not None:
            return target_m
        return join_bound(len(left), len(right), self.padding, self.bound)

    def _cascade_padding(self, padding: str | None, bound):
        return (
            self.padding if padding is None else padding,
            self.bound if bound is None else bound,
        )

    def _check_options(self, options: dict) -> None:
        unknown = set(options) - set(self.OPTIONS)
        if unknown:
            raise InputError(
                f"{self.name} engine options are {', '.join(self.OPTIONS)}; "
                f"got {sorted(unknown)}"
            )

    def compile_plan(self, workload: str = "join", **shapes) -> Plan:
        """Compile this engine's public plan for a workload shape.

        ``shapes`` are the workload's public inputs (``n1=..., n2=...`` for
        join/aggregate, ``n=...`` for filter/group-by/order-by,
        ``sizes=[...]`` for multiway) plus optional ``padding``/``bound``
        overrides; the engine's own configuration (padding mode, bound,
        shard count) fills everything left unset.  The result — the same
        plan the engine consumes when it executes — serializes canonically,
        so it can be audited and compared offline (``python -m repro
        plan``).
        """
        shapes.setdefault("padding", self.padding)
        shapes.setdefault("bound", self.bound)
        shapes.setdefault("shards", getattr(self, "shards", None))
        shapes.setdefault(
            "expand_segments", getattr(self, "expand_segments", None)
        )
        if shapes["padding"] == "revealed":
            shapes["bound"] = None  # a cap is meaningless without padding
        return compile_workload(workload, engine=self.name, **shapes)

    def compile_pipeline(self, ops, **overrides) -> Plan:
        """Compile the public plan of a whole operator chain.

        ``ops`` are the shape-only stage descriptors
        (:data:`repro.plan.compile.PIPELINE_OPS`); the engine's own
        configuration fills in padding, bound and shard count unless
        overridden.  The resulting DAG — every stage's sub-plan joined by
        ``channel`` edge nodes — is a pure function of the stage shapes and
        those options, never of the data flowing through the chain.
        """
        padding = overrides.get("padding", self.padding)
        bound = overrides.get("bound", self.bound)
        shards = overrides.get("shards", getattr(self, "shards", None))
        expand_segments = overrides.get(
            "expand_segments", getattr(self, "expand_segments", None)
        )
        if padding == "revealed" or padding is None:
            bound = None
        return compile_pipeline(
            ops,
            engine=self.name,
            shards=shards,
            padding=padding,
            bound=bound,
            expand_segments=expand_segments,
        )

    def pipeline(self, stages, tracer: Tracer | None = None) -> PipelineResult:
        """Run a whole operator chain, one operator at a time.

        This is the *reference* pipeline semantics every engine shares:
        each stage materialises fully before the next starts, calling the
        engine's own operator entry points, so the output is whatever the
        single-operator differential suite already guarantees.  The sharded
        engine overrides this with a streaming execution in revealed mode
        and falls back here otherwise; ``tests/test_pipeline.py`` pins the
        two paths bit-identical.

        ``stages`` is a list of data-carrying stage tuples — see
        :func:`repro.shard.pipeline.check_pipeline_stages` for the
        vocabulary.  Returns a :class:`~repro.shard.pipeline.PipelineResult`
        whose ``stats.plan`` is the full compiled DAG.
        """
        ops = check_pipeline_stages(stages)
        stats = PipelineStats()
        stats.plan = self.compile_pipeline(ops)
        rows = [tuple(row) for row in stages[0][1]]
        stats.sizes.append(len(rows))
        groups: list[GroupAggregate] | None = None
        for stage in list(stages)[1:]:
            name = stage[0]
            if name == "filter":
                kept = self.filter_indices(
                    [bool(flag) for flag in stage[1]], tracer=tracer
                )
                rows = [rows[index] for index in kept]
            elif name == "join":
                result = self.join(
                    rows, [tuple(pair) for pair in stage[1]], tracer=tracer
                )
                # Padded joins append tagged dummies; the chain continues
                # with the real rows (the final output size is public in
                # the paper's model, and so is every stage's true size
                # here — stats.sizes is exactly that reveal).
                pairs = (
                    result.pairs
                    if self.padding == "revealed"
                    else compact_pairs(result.pairs)
                )
                rows = [tuple(pair) for pair in pairs]
            elif name == "multiway":
                result = self.multiway_join(
                    [rows] + [[tuple(row) for row in table] for table in stage[1]],
                    list(stage[2]),
                    tracer=tracer,
                )
                rows = [tuple(row) for row in result.rows]
            elif name == "group_by":
                groups = self.group_by(rows, tracer=tracer)
                stats.sizes.append(len(groups))
                continue
            else:  # order_by
                key_columns = [
                    ([row[column] for row in rows], ascending)
                    for column, ascending in stage[1]
                ]
                permutation = self.order_permutation(key_columns, tracer=tracer)
                rows = [rows[index] for index in permutation]
            stats.sizes.append(len(rows))
        return PipelineResult(
            rows=None if groups is not None else rows,
            groups=groups,
            sizes=list(stats.sizes),
            stats=stats,
        )


@runtime_checkable
class Engine(Protocol):
    """Uniform entry points every execution engine implements.

    Engines that have no per-access trace (the vector and sharded engines)
    accept and ignore ``tracer``; their adversary view is the primitive
    schedule instead.

    Every in-tree engine also understands *padded execution*
    (:mod:`repro.core.padding`): configure it with
    ``get_engine(name, padding="worst_case")`` (plus ``bound=...`` for
    ``"bounded"``), or per call via ``join(..., target_m=...)`` and
    ``multiway_join(..., padding=..., bound=...)``.  Padded calls return
    the same real rows plus tagged dummies, and their trace/schedule is a
    function of input sizes and public bounds only — ``docs/leakage.md``
    tabulates exactly what each engine reveals in each mode.  The
    ``OPTIONS`` class attribute names the keywords an engine's
    ``with_options`` accepts (``python -m repro engines`` prints them).

    ``filter_indices`` and ``order_permutation`` are the index-level
    primitives behind the db layer's FILTER and ORDER BY.  The order-by
    contract is a *stable* sort (original position breaks ties), which
    makes the permutation engine-independent and keeps the differential
    suite's bit-identical guarantee.

    ``compile_plan`` exposes the engine's public schedule as a
    :class:`~repro.plan.ir.Plan` — a pure function of workload shapes and
    the engine's configuration, compiled by :mod:`repro.plan.compile`
    before any data is touched.  Sharded execution *consumes* the same
    plans (grid bounds, padded block sizes come from plan nodes), so the
    printed artifact and the executed schedule cannot drift apart.
    """

    name: str

    def join(
        self,
        left: Pairs,
        right: Pairs,
        tracer: Tracer | None = None,
        target_m: int | None = None,
    ) -> JoinResult: ...

    def multiway_join(
        self,
        tables: list[list[tuple]],
        keys: list[tuple[int, int]],
        tracer: Tracer | None = None,
        padding: str | None = None,
        bound=None,
    ) -> MultiwayResult: ...

    def join_tree(
        self,
        tables: list[list[tuple]],
        edges,
        tracer: Tracer | None = None,
        padding: str | None = None,
        bound=None,
    ) -> JoinTreeResult: ...

    def aggregate(
        self, left: Pairs, right: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]: ...

    def group_by(
        self, table: Pairs, tracer: Tracer | None = None
    ) -> list[GroupAggregate]: ...

    def filter_indices(
        self, mask: list[bool], tracer: Tracer | None = None
    ) -> list[int]: ...

    def order_permutation(
        self,
        columns: list[tuple[list, bool]],
        tracer: Tracer | None = None,
    ) -> list[int]: ...

    def compile_plan(self, workload: str = "join", **shapes) -> Plan: ...

    def compile_pipeline(self, ops, **overrides) -> Plan: ...

    def pipeline(
        self, stages, tracer: Tracer | None = None
    ) -> PipelineResult: ...


_REGISTRY: dict[str, Engine] = {}


def register_engine(engine: Engine) -> Engine:
    """Register ``engine`` under ``engine.name``; returns it for chaining."""
    if not engine.name:
        raise InputError("engines must carry a non-empty name")
    _REGISTRY[engine.name] = engine
    return engine


def engine_option_names(engine: Engine) -> tuple[str, ...]:
    """The keyword options ``engine.with_options`` accepts (may be empty)."""
    return tuple(getattr(engine, "OPTIONS", ()))


def get_engine(engine: str | Engine, **options) -> Engine:
    """Resolve an engine by name (or pass an instance straight through).

    Keyword options (``workers=4, shards=4`` for the sharded engine,
    ``padding="worst_case"`` / ``bound=...`` for every in-tree engine) are
    forwarded to the engine's ``with_options`` hook, which returns a
    configured copy; engines without the hook reject any options.
    """
    if isinstance(engine, str):
        try:
            engine = _REGISTRY[engine]
        except KeyError:
            raise InputError(
                f"unknown engine {engine!r}; available: {', '.join(sorted(_REGISTRY))}"
            ) from None
    if not options:
        return engine
    configure = getattr(engine, "with_options", None)
    if configure is None:
        raise InputError(
            f"engine {engine.name!r} accepts no options, got {sorted(options)}"
        )
    return configure(**options)


def available_engines() -> list[str]:
    """Sorted names of all registered engines."""
    return sorted(_REGISTRY)
