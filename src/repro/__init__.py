"""repro — a reproduction of "Efficient Oblivious Database Joins" (VLDB'20).

The package implements Krastnikov, Kerschbaum and Stebila's oblivious
equi-join algorithm end to end: the traced reference engine whose
public-memory access pattern is provably input-independent, a vectorised
numpy engine for benchmark-scale runs, a sharded multi-process engine,
padded multiway cascades that hide intermediate result sizes behind public
bounds (``padding="bounded"|"worst_case"``; see ``docs/leakage.md``), a
compile-then-execute core (:mod:`repro.plan`: a public Plan IR compiled
from input shapes, run by pluggable inline / shared-memory pool / async
executors), the Table 1 baselines, the Figure 6 type system, an SGX cost
model for the Figure 8 series, and a small oblivious relational layer.

Quickstart::

    from repro import oblivious_join
    result = oblivious_join([(1, 10), (2, 20)], [(1, 77), (1, 78)])
    result.pairs   # [(10, 77), (10, 78)]

See README.md for the quickstart and engine matrix, docs/architecture.md
for the layer map, docs/leakage.md for the per-engine leakage profiles,
and benchmarks/ for the paper-vs-measured record of every table and
figure.
"""

from . import analysis, baselines, core, db, enclave, engines, memory, obliv, plan
from . import security, typesys, vector, workloads
from .plan import (
    Plan,
    available_executors,
    compile_workload,
    get_executor,
)
from .core.aggregate import GroupAggregate, oblivious_group_by, oblivious_join_aggregate
from .core.join import JoinResult, oblivious_join
from .core.multiway import MultiwayResult, oblivious_multiway_join
from .core.padding import PADDING_MODES, cascade_bounds, compact_pairs, join_bound
from .db.query import ObliviousEngine
from .db.table import DBTable
from .engines import Engine, available_engines, get_engine, register_engine
from .errors import (
    BoundError,
    CapacityError,
    EnclaveError,
    InjectivityError,
    InputError,
    ObliviousnessError,
    ReproError,
    SchemaError,
    TraceMismatchError,
    TypingError,
)
from .memory.monitor import verify_oblivious
from .memory.tracer import CountSink, HashSink, ListSink, Tracer
from .vector.aggregate import vector_group_by, vector_join_aggregate
from .vector.join import vector_oblivious_join
from .vector.multiway import vector_multiway_join

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "core",
    "db",
    "enclave",
    "engines",
    "memory",
    "obliv",
    "plan",
    "security",
    "typesys",
    "vector",
    "workloads",
    "Engine",
    "available_engines",
    "get_engine",
    "register_engine",
    "Plan",
    "available_executors",
    "compile_workload",
    "get_executor",
    "GroupAggregate",
    "oblivious_group_by",
    "oblivious_join_aggregate",
    "JoinResult",
    "oblivious_join",
    "MultiwayResult",
    "oblivious_multiway_join",
    "PADDING_MODES",
    "cascade_bounds",
    "compact_pairs",
    "join_bound",
    "ObliviousEngine",
    "DBTable",
    "BoundError",
    "CapacityError",
    "EnclaveError",
    "InjectivityError",
    "InputError",
    "ObliviousnessError",
    "ReproError",
    "SchemaError",
    "TraceMismatchError",
    "TypingError",
    "verify_oblivious",
    "CountSink",
    "HashSink",
    "ListSink",
    "Tracer",
    "vector_oblivious_join",
    "vector_multiway_join",
    "vector_join_aggregate",
    "vector_group_by",
    "__version__",
]
