"""The cross-query plan cache behind :mod:`repro.plan.memo`.

Plan compilation is deterministic: every compiler and schedule function in
:mod:`repro.plan` is a pure function of *public shapes* — ``(workload,
sizes, k, shards, padding, bound, engine options)`` — which is exactly the
paper's obliviousness contract (plan bytes depend on nothing secret).  That
purity is what makes a cache sound: a hit returns the very object a fresh
compile would build, byte-identical under ``Plan.serialize()`` (pinned by
``tests/test_service.py``), so caching can never change a schedule, only
skip re-deriving it.

:class:`PlanCache` implements the memo protocol
(:meth:`~PlanCache.get_or_compute`) that :func:`repro.plan.memo.memoised`
wrappers consult when the service layer installs it via
:func:`repro.plan.memo.set_plan_memo`.  Keys are ``(kind, function
identity, frozen arguments)``; arguments that cannot be canonically frozen
(anything but ints/strs/bools/None and nests of them) bypass the cache —
counted, never guessed at.  Entries are LRU-evicted beyond ``max_entries``
and the cache is thread-safe (compute runs outside the lock; on a race the
first stored value wins, which is safe because values are byte-identical
by purity).
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class _Unfreezable(Exception):
    """An argument with no canonical hashable form — bypass the cache."""


def _freeze_key(value):
    """A canonical hashable form of a compile argument, or raise.

    Plan compilers take shapes: ints, strings, bools, ``None``, and nested
    sequences/dicts of them (``compile_pipeline`` op descriptors).  Floats
    are deliberately excluded — the plan IR itself rejects them.
    """
    if value is None or type(value) in (bool, int, str):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_key(item) for item in value)
    if isinstance(value, dict):
        try:
            items = sorted(value.items())
        except TypeError as exc:
            raise _Unfreezable(str(exc)) from None
        return ("__dict__",) + tuple((k, _freeze_key(v)) for k, v in items)
    raise _Unfreezable(f"cannot freeze {type(value).__name__}")


class PlanCache:
    """Keyed cache of compiled plans and materialized schedules."""

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        self.stats = {"hits": 0, "misses": 0, "uncacheable": 0}

    def get_or_compute(self, kind: str, fn, args, kwargs):
        """The memo protocol: return the cached value or compute-and-store.

        ``kind`` partitions the key space ("plan" for compilers, "schedule"
        for partition/tournament schedules) so stats stay interpretable.
        """
        try:
            key = (
                kind,
                fn.__module__,
                fn.__qualname__,
                _freeze_key(args),
                _freeze_key(sorted(kwargs.items())) if kwargs else (),
            )
        except _Unfreezable:
            with self._lock:
                self.stats["uncacheable"] += 1
            return fn(*args, **kwargs)
        with self._lock:
            if key in self._entries:
                self.stats["hits"] += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.stats["misses"] += 1
        value = fn(*args, **kwargs)
        with self._lock:
            if key not in self._entries:
                self._entries[key] = value
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
            return self._entries[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> dict:
        """A point-in-time copy of the counters (per-query stats deltas)."""
        with self._lock:
            return dict(self.stats)
