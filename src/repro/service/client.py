"""A small synchronous client for the ``repro serve`` JSON-lines protocol.

One persistent socket per client; requests and responses are one JSON
object per line (see :mod:`repro.service.server` for the protocol).  Server
-side errors surface as :class:`ServiceError` carrying the server's error
kind, so callers can distinguish a bad spec from a down server.
"""

from __future__ import annotations

import json
import socket

from ..db.table import DBTable
from ..errors import ReproError
from .server import payload_table, table_payload


class ServiceError(ReproError):
    """The server answered ``ok: false``; ``kind`` is its error class."""

    def __init__(self, message: str, kind: str = "ReproError") -> None:
        super().__init__(message)
        self.kind = kind


class ServiceClient:
    """Talk to a running query server over one persistent connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0):
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")

    def request(self, payload: dict) -> dict:
        """One round trip; raises :class:`ServiceError` on ``ok: false``."""
        self._socket.sendall(json.dumps(payload).encode() + b"\n")
        line = self._reader.readline()
        if not line:
            raise ServiceError("server closed the connection", "ConnectionError")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "unknown server error"),
                response.get("kind", "ReproError"),
            )
        return response

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def register_table(self, name: str, table: DBTable) -> int:
        payload = {"op": "register", "name": name, **table_payload(table)}
        return self.request(payload)["rows"]

    def tables(self) -> list[str]:
        return self.request({"op": "tables"})["tables"]

    def query(self, spec: dict) -> tuple[DBTable, dict]:
        """Run one query spec; returns ``(result table, stats dict)``."""
        response = self.request({"op": "query", "spec": spec})
        return payload_table(response["table"]), response["stats"]

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})

    def close(self) -> None:
        self._reader.close()
        self._socket.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
