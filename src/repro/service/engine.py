"""The query service engine: one warm engine serving a series of queries.

:class:`ServiceEngine` is the in-process core behind ``python -m repro
serve``: it owns one configured :class:`~repro.db.query.ObliviousEngine`
plus the three cross-query caches this layer exists for —

* a :class:`~repro.service.plan_cache.PlanCache` installed as the global
  plan memo (:func:`repro.plan.memo.set_plan_memo`), so repeated shapes
  skip compilation;
* an :class:`~repro.db.encoding_cache.EncodingCache` shared with the
  relational engine *and* installed as the partition cache
  (:func:`repro.shard.partition.set_partition_cache`), so repeated tables
  skip the dictionary-encoding scans, the pairs materialization, the
  shard partitioning, and — on remote executors — the parent->worker
  column write (parts are pinned in parent-published shared memory);
* the warm executor registry (:func:`repro.plan.executors.warm_executor`),
  so the sharded engine's process pool and its workers' attach caches
  survive from one query to the next.

Queries arrive as JSON-able *specs* over named registered tables (the wire
format ``repro serve`` speaks; see :data:`QUERY_OPS`) and run strictly one
at a time under a lock — obliviousness is per-schedule, and interleaving
two schedules on one tracer/engine would corrupt both.  Concurrency is
therefore admission concurrency: :meth:`submit` is safe to call from many
asyncio tasks, requests queue on the lock, and each result reports the
queue depth it saw plus its cache hit/miss deltas.  Same-shape concurrent
requests coalesce onto the same warm pool and the same cache entries by
construction — there is exactly one engine and one set of caches.

The global hook installation means at most one ServiceEngine should be
*started* per process at a time; :meth:`close` restores whatever hooks it
replaced.  Results are bit-identical to a cold engine — pinned by the
serial-vs-concurrent and cold-vs-warm tests in ``tests/test_service.py``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

from ..db.encoding_cache import EncodingCache
from ..db.query import ObliviousEngine
from ..db.table import DBTable
from ..core.padding import compact_pairs
from ..errors import InputError, SchemaError
from ..plan.executors import executor_stats, warm_executor
from ..plan.memo import set_plan_memo
from ..shard.partition import set_partition_cache
from ..store.runtime import residency_snapshot, stats_snapshot
from .plan_cache import PlanCache

#: Spec ops the service understands (the ``repro serve`` wire surface).
QUERY_OPS = (
    "join",
    "multiway_join",
    "join_tree",
    "group_by",
    "join_aggregate",
    "order_by",
    "filter",
)

#: Comparison predicates a filter spec may name (predicates travel as data
#: on the wire, never as code).
FILTER_CMPS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


@dataclass
class QueryStats:
    """What one query cost and what the caches did for it."""

    op: str
    seconds: float
    queue_depth: int
    warm: bool
    plan_cache: dict = field(default_factory=dict)
    encoding_cache: dict = field(default_factory=dict)
    #: Block-store IO this query drove *in this process* (reads, cache
    #: hits/misses/evictions, decryptions — deltas of the attached
    #: handles' counters).  All zeros when no store-backed table was
    #: touched or the IO happened in worker processes.  Local-only
    #: diagnostics: never part of any plan or wire-visible schedule.
    store: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "seconds": self.seconds,
            "queue_depth": self.queue_depth,
            "warm": self.warm,
            "plan_cache": dict(self.plan_cache),
            "encoding_cache": dict(self.encoding_cache),
            "store": dict(self.store),
        }


@dataclass
class QueryResult:
    """A query's table plus its service-layer stats."""

    table: DBTable
    stats: QueryStats


def _delta(before: dict, after: dict) -> dict:
    return {key: after[key] - before.get(key, 0) for key in after}


class ServiceEngine:
    """A warm, cache-backed engine serving a series of queries."""

    def __init__(
        self,
        engine: str = "vector",
        plan_cache: PlanCache | None = None,
        encoding_cache: EncodingCache | None = None,
        **engine_options,
    ) -> None:
        if engine == "sharded":
            # Resolve through the warm registry so the pool (and the
            # workers' attach caches) survive across queries.
            engine_options["executor"] = warm_executor(
                engine_options.get("executor"),
                workers=engine_options.get("workers", 1),
            )
        executor = engine_options.get("executor")
        publish = bool(getattr(executor, "remote_submit", False))
        self.plans = plan_cache if plan_cache is not None else PlanCache()
        self.encoding = (
            encoding_cache
            if encoding_cache is not None
            else EncodingCache(publish=publish)
        )
        self.oblivious = ObliviousEngine(
            engine=engine, encoding_cache=self.encoding, **engine_options
        )
        self.engine_name = self.oblivious.engine.name
        # The numpy engines take (n, 2) pairs arrays directly, which is
        # what lets the cached key-handle arrays (and their cached shard
        # parts) flow in without a per-query list rebuild.
        self._array_pairs = self.engine_name in ("vector", "sharded")
        self.tables: dict[str, DBTable] = {}
        self._lock = threading.Lock()
        self._waiting = 0
        self._admitted = threading.Lock()  # guards the _waiting counter
        self._started = False
        self._previous_memo = None
        self._previous_partition_cache = None
        self.queries = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServiceEngine":
        """Install the caches as the process-wide memo/partition hooks."""
        if not self._started:
            self._previous_memo = set_plan_memo(self.plans)
            self._previous_partition_cache = set_partition_cache(self.encoding)
            self._started = True
        return self

    def close(self) -> None:
        """Restore the hooks and release every pinned published segment."""
        if self._started:
            set_plan_memo(self._previous_memo)
            set_partition_cache(self._previous_partition_cache)
            self._started = False
        self.encoding.close()

    def __enter__(self) -> "ServiceEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- tables --------------------------------------------------------------

    def register_table(self, name: str, table: DBTable) -> None:
        """Register (or replace) a named table queries can reference."""
        previous = self.tables.get(name)
        if previous is not None and previous is not table:
            self.encoding.invalidate(previous)
        self.tables[name] = table

    def _table(self, name) -> DBTable:
        try:
            return self.tables[name]
        except KeyError:
            raise InputError(
                f"unknown table {name!r}; registered: {sorted(self.tables)}"
            ) from None

    # -- queries -------------------------------------------------------------

    def query(self, spec: dict) -> QueryResult:
        """Run one query spec; returns the table plus per-query stats."""
        op = spec.get("op")
        if op not in QUERY_OPS:
            raise InputError(
                f"unknown query op {op!r}; supported: {', '.join(QUERY_OPS)}"
            )
        with self._admitted:
            depth = self._waiting
            self._waiting += 1
        try:
            with self._lock:
                plans_before = self.plans.snapshot()
                encoding_before = self.encoding.snapshot()
                store_before = stats_snapshot()
                started = time.perf_counter()
                table = getattr(self, f"_run_{op}")(spec)
                seconds = time.perf_counter() - started
                plan_delta = _delta(plans_before, self.plans.snapshot())
                encoding_delta = _delta(
                    encoding_before, self.encoding.snapshot()
                )
                store_delta = _delta(store_before, stats_snapshot())
                self.queries += 1
        finally:
            with self._admitted:
                self._waiting -= 1
        # "Warm" means the query benefited from *previous* queries: it
        # reused table-level artifacts, or its whole plan side was served
        # from cache.  (A cold sharded query self-hits the plan memo while
        # also missing — its k x k grid repeats shapes — so plan hits
        # alone don't imply warmth.)
        warm = encoding_delta.get("hits", 0) > 0 or (
            plan_delta.get("hits", 0) > 0 and plan_delta.get("misses", 0) == 0
        )
        return QueryResult(
            table=table,
            stats=QueryStats(
                op=op,
                seconds=seconds,
                queue_depth=depth,
                warm=warm,
                plan_cache=plan_delta,
                encoding_cache=encoding_delta,
                store=store_delta,
            ),
        )

    async def submit(self, spec: dict) -> QueryResult:
        """Asyncio admission: run :meth:`query` off the event loop."""
        return await asyncio.to_thread(self.query, spec)

    def service_stats(self) -> dict:
        """Service-level counters for the ``stats`` wire request."""
        return {
            "engine": self.engine_name,
            "queries": self.queries,
            "tables": sorted(self.tables),
            "waiting": self._waiting,
            "plan_cache": self.plans.snapshot(),
            "encoding_cache": self.encoding.snapshot(),
            "executors": executor_stats(),
            "store": stats_snapshot(),
            # Per-store trusted-memory residency plus the EPC-modeled
            # paging slowdown; local operator diagnostics only.
            "store_residency": residency_snapshot(),
        }

    # -- per-op runners ------------------------------------------------------

    def _join_pairs(self, table: DBTable, column: str):
        """A table's join input, in the engine's preferred pairs form.

        A store-backed table joining on an int column hands the sharded
        engine a :class:`~repro.store.StorePairs` descriptor instead of a
        materialised array — the partitioner then ships block refs and
        the workers fault in only their plan-named blocks.  ``str`` key
        columns still need the dictionary encoder, so they take the
        resident (encoding-cache) path.
        """
        encoder = self.oblivious.encoder
        if (
            self.engine_name == "sharded"
            and hasattr(table, "store_pairs")
            and table.schema.column(column).type == "int"
        ):
            return table.store_pairs(column)
        if self._array_pairs:
            return self.encoding.key_handle_pairs(table, column, encoder)
        keys = self.encoding.encoded_keys(table, column, encoder)
        return list(zip(keys, range(len(keys))))

    def _run_join(self, spec: dict) -> DBTable:
        left = self._table(spec["left"])
        right = self._table(spec["right"])
        on = tuple(spec["on"])
        if len(on) != 2:
            raise SchemaError("join 'on' must name (left_col, right_col)")
        # Same construction as ObliviousEngine.join, but the pairs inputs
        # come from the cache — stable arrays whose shard parts (and
        # published columns) are reused across queries.
        pairs_left = self._join_pairs(left, on[0])
        pairs_right = self._join_pairs(right, on[1])
        result = self.oblivious.engine.join(
            pairs_left, pairs_right, tracer=self.oblivious.tracer
        )
        schema = left.schema.concat(right.schema, ("l", "r"))
        rows = [
            left.rows[li] + right.rows[ri]
            for li, ri in compact_pairs(result.pairs)
        ]
        return DBTable(schema, rows)

    def _run_multiway_join(self, spec: dict) -> DBTable:
        tables = [self._table(name) for name in spec["tables"]]
        on = [tuple(pair) for pair in spec["on"]]
        return self.oblivious.multiway_join(tables, on)

    def _run_join_tree(self, spec: dict) -> DBTable:
        tables = [self._table(name) for name in spec["tables"]]
        tree = [tuple(edge) for edge in spec["tree"]]
        return self.oblivious.join_tree(tables, tree)

    def _run_group_by(self, spec: dict) -> DBTable:
        return self.oblivious.group_by(
            self._table(spec["table"]), spec["key"], spec["value"]
        )

    def _run_join_aggregate(self, spec: dict) -> DBTable:
        return self.oblivious.join_aggregate(
            self._table(spec["left"]),
            self._table(spec["right"]),
            tuple(spec["on"]),
            tuple(spec["values"]),
        )

    def _run_order_by(self, spec: dict) -> DBTable:
        columns = [(name, bool(asc)) for name, asc in spec["columns"]]
        return self.oblivious.order_by(self._table(spec["table"]), columns)

    def _run_filter(self, spec: dict) -> DBTable:
        table = self._table(spec["table"])
        try:
            compare = FILTER_CMPS[spec.get("cmp", "eq")]
        except KeyError:
            raise InputError(
                f"unknown filter cmp {spec.get('cmp')!r}; "
                f"supported: {', '.join(sorted(FILTER_CMPS))}"
            ) from None
        index = table.schema.index(spec["column"])
        value = spec["value"]
        return self.oblivious.filter(
            table, lambda row: compare(row[index], value)
        )
