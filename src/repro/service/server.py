"""The ``repro serve`` front end: a JSON-lines query server over TCP.

One :class:`~repro.service.engine.ServiceEngine` behind an asyncio server:
each client connection speaks newline-delimited JSON requests —

``{"op": "ping"}``
    Liveness check.
``{"op": "register", "name": ..., "specs": [...], "rows": [...]}``
    Register (or replace) a named table; ``specs`` are ``"name:type"``
    column specs, rows are value lists.
``{"op": "tables"}``
    The registered table names.
``{"op": "query", "spec": {...}}``
    Run one query spec (see :data:`~repro.service.engine.QUERY_OPS`);
    the response carries the result schema/rows and the per-query stats
    (cache hit/miss deltas, queue depth, warm flag, seconds).
``{"op": "stats"}``
    Service-level counters (caches, warm executors, pinned segments).
``{"op": "shutdown"}``
    Acknowledge, then stop the server.

Responses are one JSON object per line: ``{"ok": true, ...}`` or
``{"ok": false, "error": ..., "kind": ...}``.  Queries from concurrent
connections are admitted concurrently and serialized on the engine lock;
the JSON hop is deliberately boring — all the performance lives in the
service engine's caches, which is what ``benchmarks/bench_service.py``
measures (the server adds one round trip).

Security note: the server trusts its clients (it binds loopback by
default).  What a *network* observer learns from serving repeated queries
— cache-hit timing, shape-keyed reuse — is the subject of the
"what repetition reveals" section of ``docs/leakage.md``.
"""

from __future__ import annotations

import asyncio
import json

from ..db.schema import Schema
from ..db.table import DBTable
from ..errors import ReproError
from .engine import ServiceEngine


def table_payload(table: DBTable) -> dict:
    """A table as wire data: column specs plus row value lists."""
    return {
        "specs": [f"{c.name}:{c.type}" for c in table.schema.columns],
        "rows": [list(row) for row in table.rows],
    }


def payload_table(payload: dict) -> DBTable:
    """The inverse of :func:`table_payload`."""
    schema = Schema.of(*payload["specs"])
    return DBTable(schema, [tuple(row) for row in payload["rows"]])


class QueryServer:
    """Serve one :class:`ServiceEngine` over newline-delimited JSON."""

    def __init__(
        self,
        service: ServiceEngine,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()

    async def start(self) -> "QueryServer":
        """Bind the socket (resolving ``port=0`` to the kernel's pick)."""
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`stop`) arrives."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._shutdown.wait()
        self.service.close()

    def stop(self) -> None:
        self._shutdown.set()

    # -- request handling ----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    response = await self._dispatch(request)
                except ReproError as exc:
                    response = {
                        "ok": False,
                        "error": str(exc),
                        "kind": type(exc).__name__,
                    }
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    response = {
                        "ok": False,
                        "error": f"malformed request: {exc}",
                        "kind": type(exc).__name__,
                    }
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if response.get("bye"):
                    self.stop()
                    break
        finally:
            writer.close()

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "register":
            table = payload_table(request)
            self.service.register_table(request["name"], table)
            return {"ok": True, "name": request["name"], "rows": len(table)}
        if op == "tables":
            return {"ok": True, "tables": sorted(self.service.tables)}
        if op == "query":
            result = await self.service.submit(request["spec"])
            return {
                "ok": True,
                "table": table_payload(result.table),
                "stats": result.stats.to_dict(),
            }
        if op == "stats":
            return {"ok": True, "stats": self.service.service_stats()}
        if op == "shutdown":
            return {"ok": True, "bye": True}
        return {"ok": False, "error": f"unknown op {op!r}", "kind": "InputError"}


async def _serve(service: ServiceEngine, host: str, port: int) -> None:
    server = await QueryServer(service, host, port).start()
    # The smoke harness and CLI clients parse this exact line for the
    # resolved port, so keep it first and stable.
    print(f"listening on {server.host}:{server.port}", flush=True)
    await server.serve_until_shutdown()


def run_server(service: ServiceEngine, host: str = "127.0.0.1", port: int = 0) -> None:
    """Blocking entry point used by ``python -m repro serve``."""
    asyncio.run(_serve(service, host, port))
