"""The query service layer: cross-query caching and warm executor pools.

A single oblivious query pays three avoidable setup costs every time it
runs: compiling the (shape-determined) plan, dictionary-encoding and
partitioning the input tables, and — on the sharded engine — forking a
process pool and shipping the partitioned columns into shared memory.
None of those depend on anything but the *public* query shape and the
(unchanged) tables, so a process serving a *series* of queries can pay
them once.  This package is that process:

:mod:`~repro.service.plan_cache`
    :class:`PlanCache` — compiled plans and materialized schedules keyed
    by frozen shape arguments, installed as the :mod:`repro.plan.memo`
    hook.  A hit is byte-identical to a fresh compile.
:mod:`~repro.service.engine`
    :class:`ServiceEngine` — one warm engine + shared
    :class:`~repro.db.encoding_cache.EncodingCache` + warm executor pool,
    admitting concurrent queries (serialized on the engine), reporting
    per-query cache deltas and queue stats.
:mod:`~repro.service.server` / :mod:`~repro.service.client`
    The ``python -m repro serve`` asyncio JSON-lines front end and its
    client.

What a observer of the *service* learns beyond single-query leakage —
cache-hit timing, shape-keyed reuse across a series of queries — is
catalogued in ``docs/leakage.md`` ("what repetition reveals") and pinned
as :data:`repro.security.SERVICE_LEAKAGE`.
"""

from ..db.encoding_cache import EncodingCache
from .client import ServiceClient, ServiceError
from .engine import FILTER_CMPS, QUERY_OPS, QueryResult, QueryStats, ServiceEngine
from .plan_cache import PlanCache
from .server import QueryServer, payload_table, run_server, table_payload

__all__ = [
    "EncodingCache",
    "FILTER_CMPS",
    "PlanCache",
    "QUERY_OPS",
    "QueryResult",
    "QueryServer",
    "QueryStats",
    "ServiceClient",
    "ServiceEngine",
    "ServiceError",
    "payload_table",
    "run_server",
    "table_payload",
]
