"""Figure 6's memory-trace-obliviousness type system, executable.

A mini-language (:mod:`.lang`), the L/H lattice (:mod:`.labels`), symbolic
traces (:mod:`.traces`), the checker implementing the judgement rules
(:mod:`.checker`), a concrete interpreter (:mod:`.interp`), and the join's
kernels plus deliberately leaky foils (:mod:`.programs`).
"""

from .checker import TypeChecker, check_program, is_well_typed
from .interp import Interpreter, run_program
from .labels import Label, flows_to, join
from .lang import (
    ArrayRead,
    ArrayWrite,
    Assign,
    BinOp,
    Const,
    For,
    If,
    Program,
    Skip,
    Var,
    render_expr,
    seq,
)
from .traces import AccessEvent, RepeatTrace, concat, event_count, render, repeat
from .transform import (
    TransformError,
    count_secret_branches,
    is_level3,
    to_level3,
)

__all__ = [
    "TypeChecker",
    "check_program",
    "is_well_typed",
    "Interpreter",
    "run_program",
    "Label",
    "flows_to",
    "join",
    "ArrayRead",
    "ArrayWrite",
    "Assign",
    "BinOp",
    "Const",
    "For",
    "If",
    "Program",
    "Skip",
    "Var",
    "render_expr",
    "seq",
    "AccessEvent",
    "RepeatTrace",
    "concat",
    "event_count",
    "render",
    "repeat",
    "TransformError",
    "count_secret_branches",
    "is_level3",
    "to_level3",
]
