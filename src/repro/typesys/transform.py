"""The §3.4 transformation: level II programs to circuit-like level III.

The paper argues any level II program with L-bounded loops and constant
branching depth converts to a level III (circuit-like) program with
constant overhead, by rewriting every secret-guarded conditional into
straight-line arithmetic::

    if secret then x1 <- y1 ... else x1 <- z1 ...
    ==>
    x1 <- y1*secret + z1*(1-secret)  ...

This module implements that rewrite for the mini-language; the paper's
"transformed" SGX variant in Figure 8 is the machine-code analogue.

Mechanics for one ``If`` with an H-labelled guard (both branches already
branch-free and — by T-Cond — emitting identical traces):

1. the guard is normalised to a 0/1 temp ``c``;
2. each branch is *symbolically executed*: local assignments become
   substitutions; the k-th array read of either branch binds to one shared
   temp (both branches read the same cell at the same trace position, so
   the temp's runtime value is correct whichever branch is live); array
   writes record their value expressions;
3. the merged program replays the events in their original order — reads
   load the shared temps, writes store the multiplexed value
   ``v_then*c + v_else*(1-c)`` — and finally multiplexes every locally
   assigned variable.

Conditionals whose guard is L (public configuration, like the input
length) are left intact: a circuit family may depend on public values.
The overhead is the factor ~2 the paper quotes: both branches' value
expressions are evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ObliviousnessError
from .checker import TypeChecker, check_program
from .labels import Label
from .lang import (
    ArrayRead,
    ArrayWrite,
    Assign,
    BinOp,
    Const,
    For,
    If,
    Program,
    Skip,
    Var,
    render_expr,
)


class TransformError(ObliviousnessError):
    """The program is outside the transformable fragment of §3.4."""


def _substitute(expr, renames: dict):
    """Replace variable references by their current symbolic values."""
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        return renames.get(expr.name, expr)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op, _substitute(expr.left, renames), _substitute(expr.right, renames)
        )
    raise TransformError(f"cannot substitute in {expr!r}")


def _mux(condition: Var, if_true, if_false):
    """``if_true*c + if_false*(1-c)`` — the paper's branch elimination."""
    return BinOp(
        "+",
        BinOp("*", if_true, condition),
        BinOp("*", if_false, BinOp("-", Const(1), condition)),
    )


@dataclass
class _Branch:
    """Symbolic execution record of one (branch-free) branch body."""

    #: per trace event: ("R", array, index_expr, temp) or
    #:                  ("W", array, index_expr, value_expr)
    events: list = field(default_factory=list)
    #: final symbolic value of every locally assigned variable
    renames: dict = field(default_factory=dict)


class Level3Transformer:
    """Rewrites the H-guarded conditionals of a well-typed program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.checker = TypeChecker(program)
        self._temp_counter = 0
        self._new_variables: dict[str, Label] = {}

    def _fresh(self) -> str:
        name = f"__t{self._temp_counter}"
        self._temp_counter += 1
        self._new_variables[name] = Label.H
        return name

    def transform(self) -> Program:
        check_program(self.program)  # the rewrite is only sound when typed
        body = self._transform_body(self.program.body)
        variables = dict(self.program.variables)
        variables.update(self._new_variables)
        return Program(
            name=f"{self.program.name}_level3",
            variables=variables,
            arrays=dict(self.program.arrays),
            body=body,
        )

    # -- recursive statement rewriting --------------------------------------

    def _transform_body(self, body) -> tuple:
        out: list = []
        for stmt in body:
            out.extend(self._transform_stmt(stmt))
        return tuple(out)

    def _transform_stmt(self, stmt) -> list:
        if isinstance(stmt, (Skip, Assign, ArrayRead, ArrayWrite)):
            return [stmt]
        if isinstance(stmt, For):
            return [For(stmt.var, stmt.bound, self._transform_body(stmt.body))]
        if isinstance(stmt, If):
            then_body = self._transform_body(stmt.then_body)
            else_body = self._transform_body(stmt.else_body)
            if self._guard_label(stmt.cond) is Label.L:
                return [If(stmt.cond, then_body, else_body)]
            return self._eliminate(stmt.cond, then_body, else_body)
        raise TransformError(f"unknown statement {stmt!r}")

    def _guard_label(self, cond) -> Label:
        # Loop counters may appear in guards; they are L by construction.
        for name in _collect_vars(cond):
            self.checker.variables.setdefault(name, Label.L)
        return self.checker.label_of(cond)

    # -- the core elimination ------------------------------------------------

    def _execute(self, body, read_temps: list[str], allocate: bool) -> _Branch:
        """Symbolically run a branch-free body.

        ``read_temps`` is the shared per-read temp list: the primary branch
        allocates into it; the secondary branch consumes it positionally.
        """
        branch = _Branch()
        read_index = 0
        for stmt in body:
            if isinstance(stmt, Skip):
                continue
            if isinstance(stmt, Assign):
                branch.renames[stmt.name] = _substitute(stmt.expr, branch.renames)
            elif isinstance(stmt, ArrayRead):
                index = _substitute(stmt.index, branch.renames)
                if allocate:
                    read_temps.append(self._fresh())
                if read_index >= len(read_temps):
                    raise TransformError("branch traces disagree on read count")
                temp = read_temps[read_index]
                read_index += 1
                branch.events.append(("R", stmt.array, index, temp))
                branch.renames[stmt.name] = Var(temp)
            elif isinstance(stmt, ArrayWrite):
                index = _substitute(stmt.index, branch.renames)
                value = _substitute(stmt.expr, branch.renames)
                branch.events.append(("W", stmt.array, index, value))
            elif isinstance(stmt, (If, For)):
                raise TransformError(
                    "nested control flow inside a secret branch is outside "
                    "the §3.4 fragment (branching depth must be constant)"
                )
            else:
                raise TransformError(f"unsupported statement {stmt!r}")
        return branch

    def _eliminate(self, cond, then_body, else_body) -> list:
        guard_name = self._fresh()
        out: list = [Assign(guard_name, BinOp("!=", cond, Const(0)))]
        guard = Var(guard_name)

        read_temps: list[str] = []
        then_branch = self._execute(then_body, read_temps, allocate=True)
        else_branch = self._execute(else_body, read_temps, allocate=False)

        shape = lambda b: [(e[0], e[1], render_expr(e[2])) for e in b.events]
        if shape(then_branch) != shape(else_branch):
            raise TransformError(
                "branch traces differ; the program cannot be well-typed"
            )

        # Replay events in original order, multiplexing write values.
        for event_then, event_else in zip(then_branch.events, else_branch.events):
            op, array, index = event_then[0], event_then[1], event_then[2]
            if op == "R":
                out.append(ArrayRead(event_then[3], array, index))
            else:
                out.append(
                    ArrayWrite(array, index, _mux(guard, event_then[3], event_else[3]))
                )

        # Multiplex locally assigned variables (skip internal temps).
        assigned = [
            name
            for name in dict.fromkeys(
                list(then_branch.renames) + list(else_branch.renames)
            )
            if not name.startswith("__t")
        ]
        staged: list = []
        finals: list = []
        for name in assigned:
            value_then = then_branch.renames.get(name, Var(name))
            value_else = else_branch.renames.get(name, Var(name))
            temp = self._fresh()
            staged.append(Assign(temp, _mux(guard, value_then, value_else)))
            finals.append(Assign(name, Var(temp)))
        out.extend(staged)
        out.extend(finals)
        return out


def _collect_vars(expr) -> set[str]:
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, BinOp):
        return _collect_vars(expr.left) | _collect_vars(expr.right)
    return set()


def to_level3(program: Program) -> Program:
    """Eliminate every secret-guarded conditional from ``program``."""
    return Level3Transformer(program).transform()


def count_secret_branches(program: Program) -> int:
    """Number of H-guarded If statements present (0 == level III ready)."""
    checker = TypeChecker(program)

    def label_or_low(expr) -> Label:
        for name in _collect_vars(expr):
            checker.variables.setdefault(name, Label.L)
        return checker.label_of(expr)

    def walk(body) -> int:
        total = 0
        for stmt in body:
            if isinstance(stmt, If):
                if label_or_low(stmt.cond) is Label.H:
                    total += 1
                total += walk(stmt.then_body) + walk(stmt.else_body)
            elif isinstance(stmt, For):
                total += walk(stmt.body)
        return total

    return walk(program.body)


def is_level3(program: Program) -> bool:
    """True when the program has no secret-dependent branching left."""
    return count_secret_branches(program) == 0
