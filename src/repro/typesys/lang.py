"""A miniature imperative language mirroring the paper's §4.3 notation.

Programs in this language read and write public arrays through explicit
``x <-? A[i]`` / ``A[i] <-? e`` statements (everything else is local
memory), have structured conditionals and counted loops, and no unbounded
or data-dependent iteration — exactly the fragment Figure 6 types.  The
paper's join kernels are re-expressed in it (:mod:`repro.typesys.programs`)
so the checker can verify them mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .labels import Label

# --------------------------------------------------------------------------
# Expressions (evaluated entirely in local memory: they emit no trace).


@dataclass(frozen=True)
class Const:
    """An integer literal (always label L)."""

    value: int


@dataclass(frozen=True)
class Var:
    """A local-memory variable reference."""

    name: str


@dataclass(frozen=True)
class BinOp:
    """A binary operation on local values."""

    op: str  # one of + - * // % ^ < <= > >= == != and or min max
    left: "Expr"
    right: "Expr"


Expr = Union[Const, Var, BinOp]


# --------------------------------------------------------------------------
# Statements.


@dataclass(frozen=True)
class Skip:
    """No-op (used as an empty conditional branch)."""


@dataclass(frozen=True)
class Assign:
    """``x <- e`` — local computation, no trace."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class ArrayRead:
    """``x <-? A[i]`` — traced read of public memory into a local variable."""

    name: str
    array: str
    index: Expr


@dataclass(frozen=True)
class ArrayWrite:
    """``A[i] <-? e`` — traced write of a local value to public memory."""

    array: str
    index: Expr
    expr: Expr


@dataclass(frozen=True)
class If:
    """A conditional; Figure 6's T-Cond demands both branches trace equally."""

    cond: Expr
    then_body: tuple
    else_body: tuple = (Skip(),)


@dataclass(frozen=True)
class For:
    """``for var <- 0 .. bound-1`` — T-For demands an L-labelled bound."""

    var: str
    bound: Expr
    body: tuple


Stmt = Union[Skip, Assign, ArrayRead, ArrayWrite, If, For]


@dataclass
class Program:
    """A typed program: declarations plus a statement list.

    ``variables`` maps local variable names to labels; ``arrays`` maps
    public array names to labels.  Parameters such as ``n`` and ``m`` are
    ordinary L variables supplied at run time.
    """

    name: str
    variables: dict[str, Label] = field(default_factory=dict)
    arrays: dict[str, Label] = field(default_factory=dict)
    body: tuple = ()


def seq(*stmts: Stmt) -> tuple:
    """Convenience: a statement tuple (the language's sequencing form)."""
    return tuple(stmts)


def render_expr(expr: Expr) -> str:
    """Canonical string form of an expression (used in symbolic traces)."""
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, BinOp):
        return f"({render_expr(expr.left)}{expr.op}{render_expr(expr.right)})"
    raise TypeError(f"not an expression: {expr!r}")
