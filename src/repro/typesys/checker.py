"""The Figure 6 type checker: well-typed programs are trace-oblivious.

Implements the judgement rules as presented in the paper, with one
strengthening borrowed from the full system of Liu et al. [28] that the
paper's condensed figure leaves implicit: statements are checked under a
*program-counter label* ``pc`` that is raised to the guard's label inside
conditional branches, and assignments require ``label(e) ⊔ pc ⊑ label(x)``.
Without it, a secret-guarded ``if s then i <- 1 else i <- 2`` could launder
an H value into an L variable and use it as an array index.  (T-Cond's
trace-equality requirement is unchanged.)

Rules implemented:

===========  ===============================================================
T-Var/Const  expressions evaluate in local memory, empty trace
T-Op         ``l1 ⊔ l2``, empty trace
T-Asgn       ``l_e ⊔ pc ⊑ l_x``, empty trace
T-Read       index must be L; ``l_arr ⊑ l_x``; emits ``<R, A, i>``
T-Write      index must be L; ``l_e ⊔ pc ⊑ l_arr``; emits ``<W, A, i>``
T-Cond       both branches must emit *identical* symbolic traces
T-For        bound must be L; loop var is L; trace is the body repeated
T-Seq        concatenation
===========  ===============================================================
"""

from __future__ import annotations

from ..errors import TypingError
from .labels import Label, flows_to, join
from .lang import (
    ArrayRead,
    ArrayWrite,
    Assign,
    BinOp,
    Const,
    For,
    If,
    Program,
    Skip,
    Var,
    render_expr,
)
from .traces import EMPTY, AccessEvent, Trace, concat, render, repeat


class TypeChecker:
    """Checks one :class:`~repro.typesys.lang.Program`; produces its trace."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.variables = dict(program.variables)
        self.arrays = dict(program.arrays)

    # -- expressions ------------------------------------------------------

    def label_of(self, expr) -> Label:
        if isinstance(expr, Const):
            return Label.L
        if isinstance(expr, Var):
            if expr.name not in self.variables:
                raise TypingError(f"undeclared variable {expr.name!r}")
            return self.variables[expr.name]
        if isinstance(expr, BinOp):
            return join(self.label_of(expr.left), self.label_of(expr.right))
        raise TypingError(f"not an expression: {expr!r}")

    # -- statements -------------------------------------------------------

    def check(self) -> Trace:
        """Type-check the whole program; returns its symbolic trace."""
        return self._check_body(self.program.body, pc=Label.L)

    def _check_body(self, body, pc: Label) -> Trace:
        trace = EMPTY
        for stmt in body:
            trace = concat(trace, self._check_stmt(stmt, pc))
        return trace

    def _check_stmt(self, stmt, pc: Label) -> Trace:
        if isinstance(stmt, Skip):
            return EMPTY

        if isinstance(stmt, Assign):
            if stmt.name not in self.variables:
                raise TypingError(f"undeclared variable {stmt.name!r}")
            source = join(self.label_of(stmt.expr), pc)
            target = self.variables[stmt.name]
            if not flows_to(source, target):
                raise TypingError(
                    f"T-Asgn violation: {source} value assigned to "
                    f"{target} variable {stmt.name!r}"
                )
            return EMPTY

        if isinstance(stmt, ArrayRead):
            if stmt.array not in self.arrays:
                raise TypingError(f"undeclared array {stmt.array!r}")
            if stmt.name not in self.variables:
                raise TypingError(f"undeclared variable {stmt.name!r}")
            if self.label_of(stmt.index) is not Label.L:
                raise TypingError(
                    f"T-Read violation: H-labelled index "
                    f"{render_expr(stmt.index)!r} into array {stmt.array!r}"
                )
            source = join(self.arrays[stmt.array], pc)
            if not flows_to(source, self.variables[stmt.name]):
                raise TypingError(
                    f"T-Read violation: {source} array {stmt.array!r} read "
                    f"into {self.variables[stmt.name]} variable {stmt.name!r}"
                )
            return (AccessEvent("R", stmt.array, render_expr(stmt.index)),)

        if isinstance(stmt, ArrayWrite):
            if stmt.array not in self.arrays:
                raise TypingError(f"undeclared array {stmt.array!r}")
            if self.label_of(stmt.index) is not Label.L:
                raise TypingError(
                    f"T-Write violation: H-labelled index "
                    f"{render_expr(stmt.index)!r} into array {stmt.array!r}"
                )
            source = join(self.label_of(stmt.expr), pc)
            if not flows_to(source, self.arrays[stmt.array]):
                raise TypingError(
                    f"T-Write violation: {source} value written to "
                    f"{self.arrays[stmt.array]} array {stmt.array!r}"
                )
            return (AccessEvent("W", stmt.array, render_expr(stmt.index)),)

        if isinstance(stmt, If):
            branch_pc = join(pc, self.label_of(stmt.cond))
            then_trace = self._check_body(stmt.then_body, branch_pc)
            else_trace = self._check_body(stmt.else_body, branch_pc)
            if then_trace != else_trace:
                raise TypingError(
                    "T-Cond violation: branch traces differ:\n"
                    f"  then: {render(then_trace)}\n"
                    f"  else: {render(else_trace)}"
                )
            return then_trace

        if isinstance(stmt, For):
            if self.label_of(stmt.bound) is not Label.L:
                raise TypingError(
                    f"T-For violation: loop bound "
                    f"{render_expr(stmt.bound)!r} is input-dependent (H)"
                )
            if stmt.var in self.variables and self.variables[stmt.var] is Label.H:
                raise TypingError(f"loop variable {stmt.var!r} must be L")
            previous = self.variables.get(stmt.var)
            self.variables[stmt.var] = Label.L
            try:
                body_trace = self._check_body(stmt.body, pc)
            finally:
                if previous is None:
                    del self.variables[stmt.var]
                else:
                    self.variables[stmt.var] = previous
            return repeat(body_trace, render_expr(stmt.bound))

        raise TypingError(f"unknown statement {stmt!r}")


def check_program(program: Program) -> Trace:
    """Type-check ``program``; raise :class:`TypingError` or return trace."""
    return TypeChecker(program).check()


def is_well_typed(program: Program) -> bool:
    """Predicate form of :func:`check_program`."""
    try:
        check_program(program)
    except TypingError:
        return False
    return True
