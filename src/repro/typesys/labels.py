"""The L/H security-label lattice of the Figure 6 type system."""

from __future__ import annotations

from enum import Enum


class Label(Enum):
    """``L`` = input-independent (public), ``H`` = input-dependent (secret)."""

    L = "L"
    H = "H"

    def __str__(self) -> str:
        return self.value


def join(a: Label, b: Label) -> Label:
    """The lattice join ``l1 ⊔ l2``: H if either operand is H."""
    return Label.H if Label.H in (a, b) else Label.L


def flows_to(a: Label, b: Label) -> bool:
    """The ordering ``l1 ⊑ l2``: L flows anywhere, H only to H."""
    return a is Label.L or b is Label.H
