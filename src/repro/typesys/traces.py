"""Symbolic memory traces — the ``T`` component of Figure 6 judgements.

A symbolic trace is a sequence of read/write events whose indices are
*expressions* (canonical strings), plus a repetition node for loops
(``T || ... || T``, t copies).  Two program fragments are
trace-equivalent when their symbolic traces are structurally equal — the
property T-Cond demands of conditional branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class AccessEvent:
    """One symbolic public-memory access: ``<R|W, array, index-expr>``."""

    op: str  # "R" or "W"
    array: str
    index: str  # canonical expression string

    def __str__(self) -> str:
        return f"<{self.op},{self.array},{self.index}>"


@dataclass(frozen=True)
class RepeatTrace:
    """``body`` repeated ``count`` times (count is an L expression string)."""

    body: tuple
    count: str

    def __str__(self) -> str:
        inner = "".join(str(e) for e in self.body)
        return f"[{inner}]^{self.count}"


TraceItem = Union[AccessEvent, RepeatTrace]
#: A trace is a tuple of events and repetition nodes.
Trace = tuple

EMPTY: Trace = ()


def concat(*traces: Trace) -> Trace:
    """Trace concatenation (``T1 || T2``)."""
    out: list[TraceItem] = []
    for t in traces:
        out.extend(t)
    return tuple(out)


def repeat(body: Trace, count: str) -> Trace:
    """The T-For trace: ``body`` repeated ``count`` times.

    An empty body repeats to the empty trace regardless of the count.
    """
    if not body:
        return EMPTY
    return (RepeatTrace(body=body, count=count),)


def render(trace: Trace) -> str:
    return "".join(str(item) for item in trace)


def event_count(trace: Trace, bindings: dict[str, int]) -> int:
    """Number of concrete events the trace denotes under ``bindings``.

    Repetition counts are evaluated with Python's ``eval`` over the binding
    environment — counts are L expressions over parameters like ``n``, so
    this is exactly the paper's "length depends only on input sizes".
    """
    total = 0
    for item in trace:
        if isinstance(item, AccessEvent):
            total += 1
        else:
            count = int(eval(item.count.replace("//", "//"), {}, dict(bindings)))
            total += count * event_count(item.body, bindings)
    return total
