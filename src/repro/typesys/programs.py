"""The join's kernels expressed in the mini-language, plus leaky foils.

The paper §6.1 verifies its C++ implementation by annotating it with the
Figure 6 types.  We go one step further: the algorithm's characteristic
loops are *re-written* in the typed language, the checker certifies them,
and the interpreter runs them — so the typing claim is executable.  The
``leaky_*`` programs are deliberately insecure variants (including the
sort-merge pointer advance from the paper's introduction) that the checker
must reject; the test suite pins both directions.
"""

from __future__ import annotations

from .labels import Label
from .lang import (
    ArrayRead,
    ArrayWrite,
    Assign,
    BinOp,
    Const,
    For,
    If,
    Program,
    Skip,
    Var,
    seq,
)

L = Label.L
H = Label.H


def _v(name: str) -> Var:
    return Var(name)


def _c(value: int) -> Const:
    return Const(value)


def _op(op: str, a, b) -> BinOp:
    return BinOp(op, a, b)


def fill_dimensions_forward() -> Program:
    """The forward scan of Algorithm 2 (running group counters).

    Parameters at run time: ``n`` plus arrays ``J, TID, A1, A2`` of size n.
    """
    body = seq(
        Assign("prevj", _c(0)),
        Assign("c1", _c(0)),
        Assign("c2", _c(0)),
        For(
            "i",
            _v("n"),
            seq(
                ArrayRead("x", "J", _v("i")),
                ArrayRead("t", "TID", _v("i")),
                Assign(
                    "isnew",
                    _op("or", _op("==", _v("i"), _c(0)), _op("!=", _v("x"), _v("prevj"))),
                ),
                If(
                    _v("isnew"),
                    seq(Assign("c1", _c(0)), Assign("c2", _c(0))),
                    seq(Skip()),
                ),
                If(
                    _op("==", _v("t"), _c(1)),
                    seq(Assign("c1", _op("+", _v("c1"), _c(1)))),
                    seq(Assign("c2", _op("+", _v("c2"), _c(1)))),
                ),
                ArrayWrite("A1", _v("i"), _v("c1")),
                ArrayWrite("A2", _v("i"), _v("c2")),
                Assign("prevj", _v("x")),
            ),
        ),
    )
    return Program(
        name="fill_dimensions_forward",
        variables={
            "n": L, "x": H, "t": H, "c1": H, "c2": H, "prevj": H, "isnew": H,
        },
        arrays={"J": H, "TID": H, "A1": H, "A2": H},
        body=body,
    )


def routing_network() -> Program:
    """The O(m log m) hop loop of Algorithm 3.

    Run-time parameters: ``m`` (array size), ``jstart`` (the initial hop,
    ``2^(ceil(log2 m)-1)``) and ``nphases`` (= ``log2(jstart)+1``); all are
    L values derived from the public length.  Arrays: payload ``A`` and
    0-based targets ``F`` (−1 for ∅ entries, the paper's ``f_hat(∅)=0``).
    """
    idx = _op("-", _op("-", _op("-", _v("m"), _v("jhop")), _c(1)), _v("i"))
    idx_hi = _op("+", _v("idx"), _v("jhop"))
    body = seq(
        Assign("jhop", _v("jstart")),
        For(
            "p",
            _v("nphases"),
            seq(
                For(
                    "i",
                    _op("-", _v("m"), _v("jhop")),
                    seq(
                        Assign("idx", idx),
                        ArrayRead("y", "A", _v("idx")),
                        ArrayRead("fv", "F", _v("idx")),
                        ArrayRead("y2", "A", idx_hi),
                        ArrayRead("f2v", "F", idx_hi),
                        Assign("cond", _op(">=", _v("fv"), _op("+", _v("idx"), _v("jhop")))),
                        If(
                            _v("cond"),
                            seq(
                                ArrayWrite("A", _v("idx"), _v("y2")),
                                ArrayWrite("F", _v("idx"), _v("f2v")),
                                ArrayWrite("A", idx_hi, _v("y")),
                                ArrayWrite("F", idx_hi, _v("fv")),
                            ),
                            seq(
                                ArrayWrite("A", _v("idx"), _v("y")),
                                ArrayWrite("F", _v("idx"), _v("fv")),
                                ArrayWrite("A", idx_hi, _v("y2")),
                                ArrayWrite("F", idx_hi, _v("f2v")),
                            ),
                        ),
                    ),
                ),
                Assign("jhop", _op("//", _v("jhop"), _c(2))),
            ),
        ),
    )
    return Program(
        name="routing_network",
        variables={
            "m": L, "jstart": L, "nphases": L, "jhop": L, "idx": L,
            "y": H, "y2": H, "fv": H, "f2v": H, "cond": H,
        },
        arrays={"A": H, "F": H},
        body=body,
    )


def fill_down() -> Program:
    """The duplicate-fill pass of Algorithm 4 (lines 14-21).

    Arrays: payload ``A`` and null flags ``NUL`` (1 = ∅), both size ``m``.
    After the pass every cell is real, so NUL is cleared with dummy-free
    constant writes (same trace on both branches).
    """
    body = seq(
        Assign("px", _c(0)),
        For(
            "i",
            _v("m"),
            seq(
                ArrayRead("x", "A", _v("i")),
                ArrayRead("nul", "NUL", _v("i")),
                If(
                    _v("nul"),
                    seq(Assign("x", _v("px"))),
                    seq(Assign("px", _v("x"))),
                ),
                ArrayWrite("A", _v("i"), _v("x")),
                ArrayWrite("NUL", _v("i"), _c(0)),
            ),
        ),
    )
    return Program(
        name="fill_down",
        variables={"m": L, "x": H, "nul": H, "px": H},
        arrays={"A": H, "NUL": H},
        body=body,
    )


def align_index_pass() -> Program:
    """The per-entry alignment index computation of Algorithm 5."""
    body = seq(
        Assign("prevj", _c(0)),
        Assign("q", _c(0)),
        For(
            "i",
            _v("m"),
            seq(
                ArrayRead("x", "J", _v("i")),
                ArrayRead("a1v", "A1", _v("i")),
                ArrayRead("a2v", "A2", _v("i")),
                Assign(
                    "isnew",
                    _op("or", _op("==", _v("i"), _c(0)), _op("!=", _v("x"), _v("prevj"))),
                ),
                If(
                    _v("isnew"),
                    seq(Assign("q", _c(0))),
                    seq(Assign("q", _op("+", _v("q"), _c(1)))),
                ),
                Assign("prevj", _v("x")),
                Assign(
                    "iiv",
                    _op(
                        "+",
                        _op("//", _v("q"), _v("a1v")),
                        _op("*", _op("%", _v("q"), _v("a1v")), _v("a2v")),
                    ),
                ),
                ArrayWrite("II", _v("i"), _v("iiv")),
            ),
        ),
    )
    return Program(
        name="align_index_pass",
        variables={
            "m": L, "x": H, "a1v": H, "a2v": H, "q": H, "prevj": H,
            "isnew": H, "iiv": H,
        },
        arrays={"J": H, "A1": H, "A2": H, "II": H},
        body=body,
    )


def transposition_sort() -> Program:
    """Odd-even transposition sort: the compare-exchange typing exemplar.

    The conditional-swap body is identical to the one inside the bitonic
    network (only the pair schedule differs), so its well-typedness carries
    the same argument the paper makes for its sort calls.  Arrays: keys
    ``K``, payloads ``P``; run-time parameter ``n``.
    """
    lo = _v("lo")
    hi = _v("hi")
    body = seq(
        For(
            "r",
            _v("n"),
            seq(
                Assign("off", _op("%", _v("r"), _c(2))),
                For(
                    "i",
                    _op("//", _op("-", _v("n"), _v("off")), _c(2)),
                    seq(
                        Assign("lo", _op("+", _v("off"), _op("*", _c(2), _v("i")))),
                        Assign("hi", _op("+", _v("lo"), _c(1))),
                        ArrayRead("ky", "K", lo),
                        ArrayRead("ky2", "K", hi),
                        ArrayRead("py", "P", lo),
                        ArrayRead("py2", "P", hi),
                        Assign("cond", _op(">", _v("ky"), _v("ky2"))),
                        If(
                            _v("cond"),
                            seq(
                                ArrayWrite("K", lo, _v("ky2")),
                                ArrayWrite("K", hi, _v("ky")),
                                ArrayWrite("P", lo, _v("py2")),
                                ArrayWrite("P", hi, _v("py")),
                            ),
                            seq(
                                ArrayWrite("K", lo, _v("ky")),
                                ArrayWrite("K", hi, _v("ky2")),
                                ArrayWrite("P", lo, _v("py")),
                                ArrayWrite("P", hi, _v("py2")),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )
    return Program(
        name="transposition_sort",
        variables={
            "n": L, "off": L, "lo": L, "hi": L,
            "ky": H, "ky2": H, "py": H, "py2": H, "cond": H,
        },
        arrays={"K": H, "P": H},
        body=body,
    )


# ---------------------------------------------------------------------------
# Deliberately leaky programs — each must be REJECTED by the checker.


def leaky_index() -> Program:
    """Reads ``A[s]`` with a secret ``s`` — classic access-pattern leak."""
    return Program(
        name="leaky_index",
        variables={"s": H, "x": H},
        arrays={"A": H},
        body=seq(ArrayRead("x", "A", _v("s"))),
    )


def leaky_branch() -> Program:
    """Writes memory in one branch only — trace reveals the secret bit."""
    return Program(
        name="leaky_branch",
        variables={"s": H},
        arrays={"A": H},
        body=seq(
            If(_v("s"), seq(ArrayWrite("A", _c(0), _c(1))), seq(Skip())),
        ),
    )


def leaky_loop() -> Program:
    """Loop bound depends on data — the §3.4 while-on-secret example."""
    return Program(
        name="leaky_loop",
        variables={"s": H, "x": H},
        arrays={"A": H},
        body=seq(For("i", _v("s"), seq(ArrayRead("x", "A", _c(0))))),
    )


def leaky_implicit_flow() -> Program:
    """Launders a secret into an L variable through branch assignment."""
    return Program(
        name="leaky_implicit_flow",
        variables={"s": H, "i": L, "x": H},
        arrays={"A": H},
        body=seq(
            If(_v("s"), seq(Assign("i", _c(1))), seq(Assign("i", _c(2)))),
            ArrayRead("x", "A", _v("i")),
        ),
    )


def leaky_sort_merge_step() -> Program:
    """The introduction's sort-merge leak: pointers advance on data.

    The merge pointers must be H (they move based on comparisons), so the
    table reads ``T1[p1]`` / ``T2[p2]`` type-fail — precisely why the paper
    calls the textbook join non-oblivious.
    """
    return Program(
        name="leaky_sort_merge_step",
        variables={"n": L, "p1": H, "p2": H, "x": H, "y": H},
        arrays={"T1": H, "T2": H},
        body=seq(
            Assign("p1", _c(0)),
            Assign("p2", _c(0)),
            For(
                "i",
                _v("n"),
                seq(
                    ArrayRead("x", "T1", _v("p1")),
                    ArrayRead("y", "T2", _v("p2")),
                    If(
                        _op("<", _v("x"), _v("y")),
                        seq(Assign("p1", _op("+", _v("p1"), _c(1)))),
                        seq(Assign("p2", _op("+", _v("p2"), _c(1)))),
                    ),
                ),
            ),
        ),
    )


WELL_TYPED = (
    fill_dimensions_forward,
    routing_network,
    fill_down,
    align_index_pass,
    transposition_sort,
)

LEAKY = (
    leaky_index,
    leaky_branch,
    leaky_loop,
    leaky_implicit_flow,
    leaky_sort_merge_step,
)
