"""Concrete interpreter for the mini-language; emits concrete traces.

Used to validate the type system empirically: for any well-typed program,
running it on different H data (same sizes) must yield identical concrete
traces — that is the soundness statement of memory-trace obliviousness, and
``tests/test_typesys_soundness.py`` property-tests it.
"""

from __future__ import annotations

from ..errors import InputError
from .lang import (
    ArrayRead,
    ArrayWrite,
    Assign,
    BinOp,
    Const,
    For,
    If,
    Program,
    Skip,
    Var,
)

#: A concrete trace event: (op, array_name, concrete_index).
ConcreteEvent = tuple[str, str, int]

_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "^": lambda a, b: a ^ b,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "and": lambda a, b: int(bool(a) and bool(b)),
    "or": lambda a, b: int(bool(a) or bool(b)),
    "min": min,
    "max": max,
}


class Interpreter:
    """Executes a program over concrete variables and arrays."""

    def __init__(
        self,
        program: Program,
        variables: dict[str, int] | None = None,
        arrays: dict[str, list[int]] | None = None,
    ) -> None:
        self.program = program
        self.variables: dict[str, int] = dict(variables or {})
        self.arrays: dict[str, list[int]] = {
            name: list(values) for name, values in (arrays or {}).items()
        }
        self.trace: list[ConcreteEvent] = []

    def eval(self, expr) -> int:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            if expr.name not in self.variables:
                raise InputError(f"unbound variable {expr.name!r}")
            return self.variables[expr.name]
        if isinstance(expr, BinOp):
            return _OPS[expr.op](self.eval(expr.left), self.eval(expr.right))
        raise InputError(f"not an expression: {expr!r}")

    def run(self) -> list[ConcreteEvent]:
        self._run_body(self.program.body)
        return self.trace

    def _run_body(self, body) -> None:
        for stmt in body:
            self._run_stmt(stmt)

    def _run_stmt(self, stmt) -> None:
        if isinstance(stmt, Skip):
            return
        if isinstance(stmt, Assign):
            self.variables[stmt.name] = self.eval(stmt.expr)
            return
        if isinstance(stmt, ArrayRead):
            index = self.eval(stmt.index)
            array = self.arrays[stmt.array]
            if not 0 <= index < len(array):
                raise InputError(
                    f"read index {index} out of range for {stmt.array!r}"
                )
            self.trace.append(("R", stmt.array, index))
            self.variables[stmt.name] = array[index]
            return
        if isinstance(stmt, ArrayWrite):
            index = self.eval(stmt.index)
            array = self.arrays[stmt.array]
            if not 0 <= index < len(array):
                raise InputError(
                    f"write index {index} out of range for {stmt.array!r}"
                )
            self.trace.append(("W", stmt.array, index))
            array[index] = self.eval(stmt.expr)
            return
        if isinstance(stmt, If):
            if self.eval(stmt.cond):
                self._run_body(stmt.then_body)
            else:
                self._run_body(stmt.else_body)
            return
        if isinstance(stmt, For):
            bound = self.eval(stmt.bound)
            for i in range(bound):
                self.variables[stmt.var] = i
                self._run_body(stmt.body)
            return
        raise InputError(f"unknown statement {stmt!r}")


def run_program(
    program: Program,
    variables: dict[str, int] | None = None,
    arrays: dict[str, list[int]] | None = None,
) -> tuple[list[ConcreteEvent], dict[str, list[int]], dict[str, int]]:
    """Run ``program``; returns (concrete trace, final arrays, final vars)."""
    interp = Interpreter(program, variables, arrays)
    trace = interp.run()
    return trace, interp.arrays, interp.variables
