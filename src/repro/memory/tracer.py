"""Memory-access tracing: the experiment apparatus of §6.1 of the paper.

The paper's prototype wraps all heap-allocated (public) memory in a class
that logs every access; for large inputs it keeps a rolling SHA-256 hash

    H <- h(H || r || t || i)

where ``r`` identifies the accessed array, ``t`` is 0 for a read and 1 for a
write, and ``i`` is the accessed index.  This module reproduces that
apparatus.  A :class:`Tracer` is the hub through which every
:class:`~repro.memory.public.PublicArray` reports its accesses; pluggable
sinks decide what to do with the event stream:

* :class:`ListSink`   — record every event (small inputs; Figure 7),
* :class:`HashSink`   — rolling SHA-256 exactly as in the paper (§6.1),
* :class:`CountSink`  — per-phase read/write counters (Table 3),
* :class:`NullSink`   — discard (pure performance runs),
* :class:`TeeSink`    — fan out to several sinks.
"""

from __future__ import annotations

import hashlib
import struct
from contextlib import contextmanager
from typing import Iterator

READ = 0
WRITE = 1

#: A trace event is the tuple ``(op, array_id, index)`` with ``op`` one of
#: :data:`READ` / :data:`WRITE`.  Phase labels are carried separately.
TraceEvent = tuple[int, int, int]

_EVENT_STRUCT = struct.Struct("<qBq")


class TraceSink:
    """Interface for consumers of the access-event stream."""

    def emit(self, op: int, array_id: int, index: int, phase: str | None) -> None:
        raise NotImplementedError


class NullSink(TraceSink):
    """Discards all events (use when only the computation matters)."""

    def emit(self, op: int, array_id: int, index: int, phase: str | None) -> None:
        pass


class ListSink(TraceSink):
    """Records every event verbatim, in order."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.phases: list[str | None] = []

    def emit(self, op: int, array_id: int, index: int, phase: str | None) -> None:
        self.events.append((op, array_id, index))
        self.phases.append(phase)

    def __len__(self) -> int:
        return len(self.events)


class HashSink(TraceSink):
    """Rolling SHA-256 over the event stream, exactly as in §6.1.

    The state starts at 32 zero bytes and folds in each event as
    ``H <- SHA256(H || pack(array_id, op, index))``.
    """

    def __init__(self) -> None:
        self._state = b"\x00" * 32
        self.count = 0

    def emit(self, op: int, array_id: int, index: int, phase: str | None) -> None:
        packed = _EVENT_STRUCT.pack(array_id, op, index)
        self._state = hashlib.sha256(self._state + packed).digest()
        self.count += 1

    @property
    def digest(self) -> bytes:
        """Current rolling hash of all events seen so far."""
        return self._state

    @property
    def hexdigest(self) -> str:
        return self._state.hex()


class CountSink(TraceSink):
    """Counts reads and writes per phase label (and in total)."""

    def __init__(self) -> None:
        self.reads: dict[str, int] = {}
        self.writes: dict[str, int] = {}
        self.total_reads = 0
        self.total_writes = 0

    def emit(self, op: int, array_id: int, index: int, phase: str | None) -> None:
        label = phase or ""
        if op == READ:
            self.reads[label] = self.reads.get(label, 0) + 1
            self.total_reads += 1
        else:
            self.writes[label] = self.writes.get(label, 0) + 1
            self.total_writes += 1

    def phase_total(self, phase: str) -> int:
        return self.reads.get(phase, 0) + self.writes.get(phase, 0)

    @property
    def total(self) -> int:
        return self.total_reads + self.total_writes


class TeeSink(TraceSink):
    """Forwards each event to every wrapped sink."""

    def __init__(self, *sinks: TraceSink) -> None:
        self.sinks = list(sinks)

    def emit(self, op: int, array_id: int, index: int, phase: str | None) -> None:
        for sink in self.sinks:
            sink.emit(op, array_id, index, phase)


class Tracer:
    """Hub that assigns array identifiers and forwards access events.

    Array identifiers are assigned in registration order, so two runs of the
    same program register the same ids and produce comparable traces.
    """

    def __init__(self, sink: TraceSink | None = None) -> None:
        self.sink: TraceSink = sink if sink is not None else NullSink()
        self._next_array_id = 0
        self._array_names: list[str] = []
        self._phase_stack: list[str] = []

    def register_array(self, name: str) -> int:
        """Register a public array; returns its stable integer id."""
        array_id = self._next_array_id
        self._next_array_id += 1
        self._array_names.append(name)
        return array_id

    def array_name(self, array_id: int) -> str:
        return self._array_names[array_id]

    @property
    def current_phase(self) -> str | None:
        return self._phase_stack[-1] if self._phase_stack else None

    @contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Label all events emitted in the block with ``label``."""
        self._phase_stack.append(label)
        try:
            yield
        finally:
            self._phase_stack.pop()

    def read(self, array_id: int, index: int) -> None:
        self.sink.emit(READ, array_id, index, self.current_phase)

    def write(self, array_id: int, index: int) -> None:
        self.sink.emit(WRITE, array_id, index, self.current_phase)


def hash_events(events: list[TraceEvent]) -> bytes:
    """Hash a recorded event list with the same rolling scheme as HashSink."""
    state = b"\x00" * 32
    for op, array_id, index in events:
        state = hashlib.sha256(state + _EVENT_STRUCT.pack(array_id, op, index)).digest()
    return state
