"""Public (adversary-visible) memory arrays.

These arrays model the "public memory" of the paper's §3.1 RAM machine: the
adversary observes *which cells* are read and written (via the tracer) but
not their contents (modelled by optional probabilistic encryption at rest).

All algorithm code in :mod:`repro.core` and :mod:`repro.obliv` accesses
tables exclusively through :class:`PublicArray`, mirroring the paper's
``e <-? T[i]`` / ``T[i] <-? e`` discipline, so the emitted trace is exactly
the memory trace the security argument is about.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..errors import InputError
from .encryption import Codec, ProbabilisticEncryptor
from .tracer import Tracer


class PublicArray:
    """A fixed-length array whose every access is reported to a tracer.

    Parameters
    ----------
    size_or_values:
        Either an integer length (cells start as ``None``) or an iterable of
        initial values.  Initialisation itself is *not* traced: it models
        the untrusted server already holding the (encrypted) input.
    name:
        Human-readable name, used in reports and visualisations.
    tracer:
        The :class:`Tracer` to report accesses to.  A private default tracer
        (null sink) is created when omitted, which keeps small scripts terse.
    encryptor / codec:
        When both are given, cells are held encrypted at rest and re-encrypted
        with a fresh nonce on every write.
    """

    __slots__ = ("_data", "_id", "_tracer", "_encryptor", "_codec", "name")

    def __init__(
        self,
        size_or_values: int | Iterable,
        name: str = "arr",
        tracer: Tracer | None = None,
        encryptor: ProbabilisticEncryptor | None = None,
        codec: Codec | None = None,
    ) -> None:
        if (encryptor is None) != (codec is None):
            raise InputError("encryptor and codec must be supplied together")
        self.name = name
        self._tracer = tracer if tracer is not None else Tracer()
        self._id = self._tracer.register_array(name)
        self._encryptor = encryptor
        self._codec = codec
        if isinstance(size_or_values, int):
            if size_or_values < 0:
                raise InputError(f"array size must be >= 0, got {size_or_values}")
            values: list = [None] * size_or_values
        else:
            values = list(size_or_values)
        if encryptor is not None:
            values = [encryptor.encrypt(codec.encode(v)) for v in values]
        self._data = values

    @property
    def array_id(self) -> int:
        return self._id

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    def __len__(self) -> int:
        return len(self._data)

    def _check(self, index: int) -> None:
        if not 0 <= index < len(self._data):
            raise IndexError(
                f"index {index} out of range for array {self.name!r}"
                f" of size {len(self._data)}"
            )

    def read(self, index: int):
        """Traced read of cell ``index`` into local memory."""
        self._check(index)
        self._tracer.read(self._id, index)
        value = self._data[index]
        if self._encryptor is not None:
            value = self._codec.decode(self._encryptor.decrypt(value))
        return value

    def write(self, index: int, value) -> None:
        """Traced write of ``value`` to cell ``index``.

        With encryption enabled the cell is re-encrypted under a fresh nonce
        even if ``value`` equals the previous plaintext, so the adversary
        cannot tell a dummy write-back from a real update (§3.5).
        """
        self._check(index)
        self._tracer.write(self._id, index)
        if self._encryptor is not None:
            value = self._encryptor.encrypt(self._codec.encode(value))
        self._data[index] = value

    def ciphertext_at(self, index: int):
        """Raw stored cell (ciphertext when encrypted); untraced, test-only."""
        self._check(index)
        return self._data[index]

    def snapshot(self) -> list:
        """Untraced plaintext copy of the whole array (test/debug only)."""
        if self._encryptor is None:
            return list(self._data)
        return [self._codec.decode(self._encryptor.decrypt(c)) for c in self._data]

    def load(self, values: Sequence) -> None:
        """Untraced bulk (re)initialisation, modelling input upload."""
        if len(values) != len(self._data):
            raise InputError(
                f"load of {len(values)} values into array of size {len(self._data)}"
            )
        if self._encryptor is not None:
            self._data = [
                self._encryptor.encrypt(self._codec.encode(v)) for v in values
            ]
        else:
            self._data = list(values)

    def __iter__(self) -> Iterator:
        return iter(self.snapshot())

    def __repr__(self) -> str:
        return f"PublicArray(name={self.name!r}, size={len(self._data)})"
