"""Memory substrate: traced public arrays, local registers, encryption.

This package models the abstract RAM machine of the paper's §3.1: public
memory the adversary can observe (addresses only, contents encrypted) and a
constant amount of protected local memory.
"""

from .encryption import Ciphertext, Codec, IntCodec, ProbabilisticEncryptor
from .local import LocalContext, oblivious_max, oblivious_min, oblivious_select
from .monitor import (
    ObliviousnessReport,
    distinguishing_events,
    first_divergence,
    run_hashed,
    run_logged,
    verify_oblivious,
)
from .public import PublicArray
from .tracer import (
    READ,
    WRITE,
    CountSink,
    HashSink,
    ListSink,
    NullSink,
    TeeSink,
    TraceEvent,
    Tracer,
    TraceSink,
    hash_events,
)

__all__ = [
    "Ciphertext",
    "Codec",
    "IntCodec",
    "ProbabilisticEncryptor",
    "LocalContext",
    "oblivious_max",
    "oblivious_min",
    "oblivious_select",
    "ObliviousnessReport",
    "distinguishing_events",
    "first_divergence",
    "run_hashed",
    "run_logged",
    "verify_oblivious",
    "PublicArray",
    "READ",
    "WRITE",
    "CountSink",
    "HashSink",
    "ListSink",
    "NullSink",
    "TeeSink",
    "TraceEvent",
    "Tracer",
    "TraceSink",
    "hash_events",
]
