"""Probabilistic encryption of public-memory cells.

§3.1 of the paper assumes the adversary "cannot infer anything about the
individual contents of individual cells of public memory, as well as whether
the contents of a cell match a previous value", achieved with a probabilistic
encryption scheme.  This module simulates such a scheme so the repository can
*demonstrate* the assumption rather than merely state it: every write
produces a fresh ciphertext (fresh nonce), so identical plaintexts written
twice are indistinguishable at rest.

The cipher is a SHA-256-based stream cipher (counter-mode keystream over
``key || nonce || block``).  It is deliberately dependency-free — the point
is behavioural fidelity (fresh randomisation per write, correct round-trip),
not cryptographic review.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

from ..errors import InputError

_BLOCK = 32


@dataclass(frozen=True)
class Ciphertext:
    """An encrypted cell value: public nonce plus masked payload."""

    nonce: bytes
    payload: bytes

    def __len__(self) -> int:
        return len(self.payload)


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in range((length + _BLOCK - 1) // _BLOCK):
        blocks.append(
            hashlib.sha256(key + nonce + counter.to_bytes(8, "little")).digest()
        )
    return b"".join(blocks)[:length]


class ProbabilisticEncryptor:
    """Encrypts byte strings with a fresh nonce per call.

    Parameters
    ----------
    key:
        Secret key; generated randomly when omitted.
    nonce_source:
        Callable returning 16 fresh bytes; defaults to ``os.urandom``.
        Tests may inject a deterministic source.
    """

    def __init__(self, key: bytes | None = None, nonce_source=None) -> None:
        self.key = key if key is not None else os.urandom(32)
        if not self.key:
            raise InputError("encryption key must be non-empty")
        self._nonce_source = nonce_source or (lambda: os.urandom(16))

    def encrypt(self, plaintext: bytes) -> Ciphertext:
        nonce = self._nonce_source()
        stream = _keystream(self.key, nonce, len(plaintext))
        payload = bytes(p ^ s for p, s in zip(plaintext, stream))
        return Ciphertext(nonce=nonce, payload=payload)

    def decrypt(self, ciphertext: Ciphertext) -> bytes:
        stream = _keystream(self.key, ciphertext.nonce, len(ciphertext.payload))
        return bytes(c ^ s for c, s in zip(ciphertext.payload, stream))


class Codec:
    """Object <-> bytes codec used by encrypted :class:`PublicArray` cells."""

    def encode(self, value) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes):
        raise NotImplementedError


class IntCodec(Codec):
    """Fixed-width signed 64-bit integer codec (``None`` encodes separately)."""

    WIDTH = 9

    def encode(self, value) -> bytes:
        if value is None:
            return b"\x00" + b"\x00" * 8
        return b"\x01" + int(value).to_bytes(8, "little", signed=True)

    def decode(self, data: bytes):
        if data[0] == 0:
            return None
        return int.from_bytes(data[1:9], "little", signed=True)
