"""Adversary view: empirical obliviousness verification (§6.1).

The paper verifies obliviousness empirically by running the program on
different inputs from the same *test class* — same ``(n1, n2)`` and same
output size ``m`` — and checking that the memory-access logs (or their
rolling SHA-256 hashes) are identical.  :func:`verify_oblivious` packages
that experiment; :class:`ObliviousnessReport` carries the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..errors import TraceMismatchError
from .tracer import HashSink, ListSink, TraceEvent, Tracer


@dataclass
class ObliviousnessReport:
    """Outcome of comparing traces across a class of inputs."""

    hashes: list[str]
    event_counts: list[int]
    oblivious: bool
    first_divergence: int | None = None
    details: str = ""
    outputs: list = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.oblivious


def run_hashed(program: Callable[[Tracer], object]) -> tuple[str, int, object]:
    """Run ``program`` with a fresh hash-sink tracer.

    Returns ``(trace_hash_hex, event_count, program_output)``.
    """
    sink = HashSink()
    output = program(Tracer(sink))
    return sink.hexdigest, sink.count, output


def run_logged(program: Callable[[Tracer], object]) -> tuple[list[TraceEvent], object]:
    """Run ``program`` with a fresh list-sink tracer; returns (events, output)."""
    sink = ListSink()
    output = program(Tracer(sink))
    return sink.events, output


def first_divergence(a: Sequence[TraceEvent], b: Sequence[TraceEvent]) -> int | None:
    """Index of the first differing event between two logs, or ``None``."""
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return i
    if len(a) != len(b):
        return min(len(a), len(b))
    return None


def verify_oblivious(
    program: Callable[[Tracer, object], object],
    inputs: Iterable,
    require: bool = False,
    keep_outputs: bool = False,
) -> ObliviousnessReport:
    """Run ``program(tracer, x)`` for every input and compare trace hashes.

    All inputs are expected to belong to one test class (equal sizes and
    output length); the report says whether every run produced an identical
    trace.  With ``require=True`` a mismatch raises
    :class:`~repro.errors.TraceMismatchError` instead of returning a failing
    report — the mode used by the test suite.
    """
    hashes: list[str] = []
    counts: list[int] = []
    outputs: list = []
    for x in inputs:
        digest, count, output = run_hashed(lambda tracer, x=x: program(tracer, x))
        hashes.append(digest)
        counts.append(count)
        if keep_outputs:
            outputs.append(output)
    oblivious = len(set(hashes)) <= 1
    details = "" if oblivious else f"{len(set(hashes))} distinct trace hashes"
    report = ObliviousnessReport(
        hashes=hashes,
        event_counts=counts,
        oblivious=oblivious,
        details=details,
        outputs=outputs,
    )
    if require and not oblivious:
        raise TraceMismatchError(
            f"trace hashes diverge across inputs of one class: {sorted(set(hashes))}"
        )
    return report


def distinguishing_events(
    program: Callable[[Tracer, object], object], input_a, input_b
) -> tuple[int | None, list[TraceEvent], list[TraceEvent]]:
    """Full-log comparison of two runs; returns divergence point and logs.

    This is the fine-grained variant used to *demonstrate leakage* of the
    non-oblivious baselines: for the insecure sort-merge join the divergence
    index pinpoints the first data-dependent pointer advance.
    """
    events_a, _ = run_logged(lambda t: program(t, input_a))
    events_b, _ = run_logged(lambda t: program(t, input_b))
    return first_divergence(events_a, events_b), events_a, events_b
