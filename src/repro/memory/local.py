"""Local (protected) memory model and branchless selection helpers.

The paper's algorithm needs only "a constant amount of local memory on the
order of the size of a single database entry" (§4.3) — registers holding one
or two entries plus a handful of counters.  :class:`LocalContext` lets the
algorithms *declare* their local working set so tests can assert the
constant-size claim mechanically (high-water mark independent of input size).

The module also provides arithmetic (branchless) selection helpers used to
express level-III-style straight-line conditionals, mirroring §3.4's
``x <- y*secret + z*(1-secret)`` transformation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..errors import CapacityError


class LocalContext:
    """Tracks how many entry-sized local slots an algorithm holds live.

    Parameters
    ----------
    capacity:
        Maximum number of simultaneously-live slots; ``None`` means
        unenforced (only the high-water mark is recorded).
    """

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = capacity
        self._live = 0
        self.peak = 0

    @contextmanager
    def slot(self, count: int = 1) -> Iterator[None]:
        """Reserve ``count`` entry-sized local slots for the block's duration."""
        self._live += count
        self.peak = max(self.peak, self._live)
        if self.capacity is not None and self._live > self.capacity:
            self._live -= count
            raise CapacityError(
                f"local memory over capacity: {self._live + count} slots"
                f" requested, capacity {self.capacity}"
            )
        try:
            yield
        finally:
            self._live -= count

    @property
    def live(self) -> int:
        return self._live


def oblivious_select(condition: bool | int, if_true: int, if_false: int) -> int:
    """Branch-free ``if_true if condition else if_false`` for integers.

    Computes ``if_false ^ ((if_true ^ if_false) & -c)`` with ``c ∈ {0, 1}``,
    the standard constant-time selection idiom; this is the §3.4 rewrite of a
    data-dependent conditional assignment.
    """
    c = -int(bool(condition))
    return if_false ^ ((if_true ^ if_false) & c)


def oblivious_min(a: int, b: int) -> int:
    """Branch-free minimum of two integers."""
    return oblivious_select(a < b, a, b)


def oblivious_max(a: int, b: int) -> int:
    """Branch-free maximum of two integers."""
    return oblivious_select(a < b, b, a)
