"""The deterministic routing network of Algorithm 3 (and its inverse).

:func:`route_forward` is the `O(m log m)` second half of
``Oblivious-Distribute``: after elements are sorted by destination, each
element "trickles down" to its target through hops of decreasing power-of-two
length.  Theorem 1 of the paper proves that a swap target is always a null
cell, so elements never collide.

:func:`route_backward` runs hops of *increasing* power-of-two length over a
forward scan, moving each element back to its rank — this is order-preserving
tight compaction in the style of Goodrich [20], which §3.5 names as the
efficient alternative to sort-based filtering.  The hop rule is the mirror
image of the forward network: an element hops back by ``j`` exactly when bit
``j`` of its remaining displacement is set (displacements are non-decreasing
along the array, which rules out collisions; see ``tests/test_compact.py``
for the property-based check).

Both loops perform identical public-memory accesses on every iteration —
the conditional swap touches the same two cells in either branch.
"""

from __future__ import annotations

from typing import Callable

from ..memory.public import PublicArray
from .network import NetworkStats


def largest_hop(m: int) -> int:
    """Initial hop length ``2^(ceil(log2 m) - 1)`` of the routing network."""
    if m <= 1:
        return 0
    return 1 << ((m - 1).bit_length() - 1)


def route_forward(
    array: PublicArray,
    target_of: Callable,
    m: int,
    stats: NetworkStats | None = None,
) -> None:
    """Send each non-null element forward to its 0-based target index.

    Preconditions (enforced by callers, proven sufficient by Theorem 1):
    elements occupy a prefix of ``array`` sorted by target; targets are
    distinct, in ``[position, m)``.  ``target_of`` returns the element's
    target, or any negative number for null elements (the paper's
    ``f_hat(∅) = 0`` in 1-based indexing).
    """
    size = len(array)
    j = largest_hop(m)
    while j >= 1:
        for i in range(size - j - 1, -1, -1):
            y = array.read(i)
            y_ahead = array.read(i + j)
            if stats is not None:
                stats.comparisons += 1
            # Same two writes happen in both branches: the adversary cannot
            # tell a hop from a dummy write-back.
            if target_of(y) >= i + j:
                if stats is not None:
                    stats.swaps += 1
                array.write(i, y_ahead)
                array.write(i + j, y)
            else:
                array.write(i, y)
                array.write(i + j, y_ahead)
        j //= 2


def route_backward(
    array: PublicArray,
    target_of: Callable,
    stats: NetworkStats | None = None,
) -> None:
    """Send each non-null element backward to its 0-based target (its rank).

    Preconditions: targets are distinct ranks ``0..k-1`` assigned in array
    order to the non-null elements (so ``target <= position`` and
    displacements ``position - target`` are non-decreasing along the array).
    ``target_of`` must return a negative number for null elements.
    """
    size = len(array)
    max_hop = largest_hop(size)
    j = 1
    while j <= max_hop:
        for i in range(size - j):
            y = array.read(i)
            y_ahead = array.read(i + j)
            if stats is not None:
                stats.comparisons += 1
            target = target_of(y_ahead)
            displacement = (i + j) - target
            if target >= 0 and displacement & j:
                if stats is not None:
                    stats.swaps += 1
                array.write(i, y_ahead)
                array.write(i + j, y)
            else:
                array.write(i, y)
                array.write(i + j, y_ahead)
        j *= 2
