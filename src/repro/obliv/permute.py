"""Pseudorandom permutations for the probabilistic distribution variant.

§5.2 sketches a probabilistic ``Oblivious-Distribute``: pick a pseudorandom
permutation π of size m, write element x to index π(f(x)) (the adversary
sees a uniformly-random n-subset of cells), then bitonic-sort cells by
π⁻¹(index) to undo the masking.  That needs an invertible PRP on an
arbitrary domain {0..m-1}; we build one with a 4-round Feistel network over
the smallest even-bit-width power-of-two domain >= m, plus cycle-walking to
stay inside the domain.  The round function is SHA-256 based, keeping the
repository dependency-free.
"""

from __future__ import annotations

import hashlib
import os

from ..errors import InputError


class FeistelPRP:
    """An invertible pseudorandom permutation on ``{0, ..., size-1}``.

    Parameters
    ----------
    size:
        Domain size (>= 1).
    key:
        Secret key bytes; random when omitted.
    rounds:
        Feistel round count (4 suffices for PRP security in this model).
    """

    def __init__(self, size: int, key: bytes | None = None, rounds: int = 4) -> None:
        if size < 1:
            raise InputError(f"PRP domain size must be >= 1, got {size}")
        if rounds < 3:
            raise InputError("a Feistel PRP needs at least 3 rounds")
        self.size = size
        self.key = key if key is not None else os.urandom(16)
        self.rounds = rounds
        # Even number of bits so the domain splits into two equal halves.
        bits = max((size - 1).bit_length(), 2)
        bits += bits % 2
        self._half_bits = bits // 2
        self._half_mask = (1 << self._half_bits) - 1
        self._domain = 1 << bits

    def _round(self, round_index: int, value: int) -> int:
        data = self.key + bytes([round_index]) + value.to_bytes(8, "little")
        digest = hashlib.sha256(data).digest()
        return int.from_bytes(digest[:8], "little") & self._half_mask

    def _encrypt_once(self, x: int) -> int:
        left = x >> self._half_bits
        right = x & self._half_mask
        for r in range(self.rounds):
            left, right = right, left ^ self._round(r, right)
        return (left << self._half_bits) | right

    def _decrypt_once(self, x: int) -> int:
        left = x >> self._half_bits
        right = x & self._half_mask
        for r in reversed(range(self.rounds)):
            left, right = right ^ self._round(r, left), left
        return (left << self._half_bits) | right

    def forward(self, x: int) -> int:
        """π(x): cycle-walk until the image lands inside the domain."""
        if not 0 <= x < self.size:
            raise InputError(f"PRP input {x} outside domain [0, {self.size})")
        y = self._encrypt_once(x)
        while y >= self.size:
            y = self._encrypt_once(y)
        return y

    def inverse(self, y: int) -> int:
        """π⁻¹(y)."""
        if not 0 <= y < self.size:
            raise InputError(f"PRP input {y} outside domain [0, {self.size})")
        x = self._decrypt_once(y)
        while x >= self.size:
            x = self._decrypt_once(x)
        return x

    def permutation(self) -> list[int]:
        """Materialise [π(0), ..., π(size-1)] (test helper; O(size))."""
        return [self.forward(i) for i in range(self.size)]
