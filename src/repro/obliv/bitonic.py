"""Batcher's bitonic sorting network (§3.5 of the paper).

The bitonic sorter is the workhorse primitive: an in-place,
input-independent `O(n log^2 n)` sort of `O(log^2 n)` depth.  The paper's
Table 3 cost accounting assumes a bitonic sort of size ``n`` performs
roughly ``n (log2 n)^2 / 4`` comparisons; :func:`comparison_count` gives the
exact number for the generated network so the Table 3 bench can report both.

Arrays whose length is not a power of two are handled by padding with the
:data:`~repro.obliv.network.PAD` sentinel (ordered after all real elements),
sorting the padded array, and copying back — all index patterns depend only
on the (public) length.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import InputError
from ..memory.public import PublicArray
from .compare import SortSpec, comparator_from_spec
from .network import PAD, NetworkStats, apply_network


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= max(n, 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def bitonic_stages(n: int) -> Iterator[list[tuple[int, int]]]:
    """Yield the compare-exchange stages of a bitonic sorter for size ``n``.

    ``n`` must be a power of two.  Pairs are oriented so that applying every
    stage in order sorts ascending: during a descending sub-phase the pair is
    emitted reversed.
    """
    if n & (n - 1):
        raise InputError(f"bitonic network size must be a power of two, got {n}")
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            stage: list[tuple[int, int]] = []
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    if i & k == 0:
                        stage.append((i, partner))
                    else:
                        stage.append((partner, i))
            yield stage
            j //= 2
        k *= 2


def comparison_count(n: int) -> int:
    """Exact comparator count of the bitonic network for ``n`` (power of 2)."""
    if n <= 1:
        return 0
    p = n.bit_length() - 1
    return (n // 2) * (p * (p + 1) // 2)


def network_depth(n: int) -> int:
    """Depth (stage count) of the bitonic network: ``log n (log n + 1)/2``."""
    if n <= 1:
        return 0
    p = n.bit_length() - 1
    return p * (p + 1) // 2


def bitonic_sort(
    array: PublicArray,
    sort_spec: SortSpec,
    stats: NetworkStats | None = None,
) -> None:
    """Obliviously sort ``array`` in place by ``sort_spec``.

    This is the library's ``Bitonic-Sort<...>`` (§3.5).  For non-power-of-two
    lengths a scratch array of the next power of two is allocated through the
    same tracer, so every access the sort performs remains on traced public
    memory.
    """
    n = len(array)
    if n <= 1:
        return
    compare = comparator_from_spec(sort_spec)
    padded = next_power_of_two(n)
    if padded == n:
        apply_network(array, bitonic_stages(n), compare, stats=stats)
        return
    scratch = PublicArray(padded, name=f"{array.name}#pad", tracer=array.tracer)
    for i in range(n):
        scratch.write(i, array.read(i))
    for i in range(n, padded):
        scratch.write(i, PAD)
    apply_network(scratch, bitonic_stages(padded), compare, stats=stats, pad_aware=True)
    for i in range(n):
        array.write(i, scratch.read(i))
