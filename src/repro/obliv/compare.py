"""Comparators and lexicographic sort specifications.

The paper parameterises bitonic sorts with lexicographic orderings over
chosen attributes, e.g. ``Bitonic-Sort<x up, y up, z down>(A)`` (§3.5).
A :class:`SortSpec` is our executable counterpart: an ordered list of
:class:`SortKey` (attribute getter + direction).  Null (∅) and padding
entries are ordered by dedicated leading keys supplied by the caller, which
is how the paper's filter idiom ``Bitonic-Sort<!= ∅ up>`` is expressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass(frozen=True)
class SortKey:
    """One attribute of a lexicographic ordering.

    ``getter`` extracts the attribute from an element; ``ascending`` gives
    the direction (the paper's ↑ / ↓ arrows).
    """

    getter: Callable
    ascending: bool = True
    name: str = ""

    def describe(self) -> str:
        arrow = "^" if self.ascending else "v"
        return f"{self.name or 'key'}{arrow}"


class SortSpec:
    """A lexicographic ordering over several attributes."""

    def __init__(self, *keys: SortKey) -> None:
        self.keys: tuple[SortKey, ...] = tuple(keys)

    def compare(self, a, b) -> int:
        """Three-way comparison of ``a`` and ``b`` under this ordering.

        Returns a negative number when ``a`` precedes ``b``, positive when
        ``b`` precedes ``a``, and 0 when they tie on every attribute.
        """
        for key in self.keys:
            ka = key.getter(a)
            kb = key.getter(b)
            if ka == kb:
                continue
            before = ka < kb
            if not key.ascending:
                before = not before
            return -1 if before else 1
        return 0

    def precedes_or_equal(self, a, b) -> bool:
        return self.compare(a, b) <= 0

    def describe(self) -> str:
        return "<" + ", ".join(k.describe() for k in self.keys) + ">"

    def __repr__(self) -> str:
        return f"SortSpec{self.describe()}"


def attr_key(name: str, ascending: bool = True) -> SortKey:
    """Sort key reading attribute ``name`` from each element."""
    return SortKey(getter=lambda e, _n=name: getattr(e, _n), ascending=ascending, name=name)


def item_key(index: int, ascending: bool = True) -> SortKey:
    """Sort key reading ``element[index]`` (for tuple-shaped elements)."""
    return SortKey(getter=lambda e, _i=index: e[_i], ascending=ascending, name=f"[{index}]")


def identity_key(ascending: bool = True) -> SortKey:
    """Sort key comparing elements directly (ints, tuples, ...)."""
    return SortKey(getter=lambda e: e, ascending=ascending, name="id")


def spec(*keys: SortKey) -> SortSpec:
    """Convenience constructor mirroring the paper's ``<k1, k2, ...>``."""
    return SortSpec(*keys)


def comparator_from_spec(sort_spec: SortSpec) -> Callable:
    """A plain ``cmp(a, b) -> int`` closure for hot loops."""
    keys: Sequence[SortKey] = sort_spec.keys

    def cmp(a, b) -> int:
        for key in keys:
            ka = key.getter(a)
            kb = key.getter(b)
            if ka == kb:
                continue
            before = ka < kb
            if not key.ascending:
                before = not before
            return -1 if before else 1
        return 0

    return cmp
