"""Sorting-network verification via the 0-1 principle.

A comparator network sorts **all** inputs if and only if it sorts every
0/1 input (Knuth's 0-1 principle) — a finite, exhaustive certificate that
complements the randomized tests.  Feasible for the small network sizes
used in unit verification (2^n inputs for size n).

Also provides :func:`network_depth_profile`, the per-element comparator
depth of a schedule — the parallel-time measure behind the paper's §6.2
remark that the algorithm parallelises to `O(log^2 n)` depth.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable

from ..errors import InputError


def sorts_all_zero_one_inputs(
    stages: Iterable[list[tuple[int, int]]], n: int
) -> bool:
    """Exhaustive 0-1-principle check of a comparator schedule.

    ``stages`` must be re-iterable (pass a list).  Exponential in ``n`` —
    intended for n <= ~18.
    """
    if n < 0:
        raise InputError(f"network size must be >= 0, got {n}")
    if n > 20:
        raise InputError(f"0-1 check infeasible for n = {n} (2^n inputs)")
    schedule = [list(stage) for stage in stages]
    for bits in product((0, 1), repeat=n):
        values = list(bits)
        for stage in schedule:
            for lo, hi in stage:
                if values[lo] > values[hi]:
                    values[lo], values[hi] = values[hi], values[lo]
        if any(values[i] > values[i + 1] for i in range(n - 1)):
            return False
    return True


def first_unsorted_witness(
    stages: Iterable[list[tuple[int, int]]], n: int
) -> tuple[int, ...] | None:
    """The first 0/1 input the network fails to sort, or ``None``."""
    schedule = [list(stage) for stage in stages]
    for bits in product((0, 1), repeat=n):
        values = list(bits)
        for stage in schedule:
            for lo, hi in stage:
                if values[lo] > values[hi]:
                    values[lo], values[hi] = values[hi], values[lo]
        if any(values[i] > values[i + 1] for i in range(n - 1)):
            return bits
    return None


def network_depth_profile(
    stages: Iterable[list[tuple[int, int]]], n: int
) -> list[int]:
    """Per-wire comparator depth: the length of each wire's critical path.

    The maximum over wires is the network's parallel depth.  For a
    stage-form schedule this is at most the stage count, but can be lower
    when consecutive stages touch disjoint wires.
    """
    depth = [0] * n
    for stage in stages:
        for lo, hi in stage:
            level = max(depth[lo], depth[hi]) + 1
            depth[lo] = level
            depth[hi] = level
    return depth


def parallel_depth(stages: Iterable[list[tuple[int, int]]], n: int) -> int:
    """The network's critical-path length (parallel time in comparators)."""
    profile = network_depth_profile(stages, n)
    return max(profile) if profile else 0
