"""Batcher's odd-even mergesort network.

An alternative `O(n log^2 n)` sorting network with fewer comparators than
the bitonic sorter — a lower-order-term saving (~20% at n=8, shrinking with
n, since both share the ``n log^2 n / 4`` leading term).  The paper
standardises on bitonic sorts for its cost accounting; we provide odd-even
as an ablation so the benchmark suite can quantify the constant-factor
choice (``benchmarks/bench_ablation_sorts.py``).
"""

from __future__ import annotations

from typing import Iterator

from ..errors import InputError
from ..memory.public import PublicArray
from .compare import SortSpec, comparator_from_spec
from .network import PAD, NetworkStats, apply_network
from .bitonic import next_power_of_two


def oddeven_stages(n: int) -> Iterator[list[tuple[int, int]]]:
    """Yield the stages of Batcher's odd-even mergesort for size ``n``.

    ``n`` must be a power of two.  All pairs are ascending-oriented; this is
    the standard iterative formulation of the recursive odd-even merge.
    """
    if n & (n - 1):
        raise InputError(f"odd-even network size must be a power of two, got {n}")
    p = 1
    while p < n:
        k = p
        while k >= 1:
            stage: list[tuple[int, int]] = []
            for j in range(k % p, n - k, 2 * k):
                for i in range(min(k, n - j - k)):
                    if (i + j) // (p * 2) == (i + j + k) // (p * 2):
                        stage.append((i + j, i + j + k))
            yield stage
            k //= 2
        p *= 2


def comparison_count(n: int) -> int:
    """Exact comparator count of the odd-even network for ``n`` (power of 2)."""
    return sum(len(stage) for stage in oddeven_stages(n)) if n > 1 else 0


def oddeven_sort(
    array: PublicArray,
    sort_spec: SortSpec,
    stats: NetworkStats | None = None,
) -> None:
    """Obliviously sort ``array`` in place with the odd-even network."""
    n = len(array)
    if n <= 1:
        return
    compare = comparator_from_spec(sort_spec)
    padded = next_power_of_two(n)
    if padded == n:
        apply_network(array, oddeven_stages(n), compare, stats=stats)
        return
    scratch = PublicArray(padded, name=f"{array.name}#pad", tracer=array.tracer)
    for i in range(n):
        scratch.write(i, array.read(i))
    for i in range(n, padded):
        scratch.write(i, PAD)
    apply_network(scratch, oddeven_stages(padded), compare, stats=stats, pad_aware=True)
    for i in range(n):
        array.write(i, scratch.read(i))
