"""Oblivious (order-preserving) compaction and the filter idiom of §3.5.

Given an array where some cells hold null/dummy elements, compaction moves
the ``k`` real elements to the front, preserving their relative order, with
an input-independent access pattern.  Two interchangeable implementations:

* :func:`compact_by_sorting` — the paper's ``Bitonic-Sort<!= ∅ up>`` filter:
  `O(n log^2 n)` comparisons.  (Bitonic sort is not stable, so order
  preservation is obtained by tagging each element with its position in a
  linear pre-pass and sorting on ``(is_null, position)``.)
* :func:`compact_by_routing` — Goodrich-style `O(n log n)` order-preserving
  compaction built on the reverse routing network, cited in §3.5 as the
  asymptotically better alternative.

Both reveal nothing beyond the array length; the count ``k`` they return is
computed in local memory.
"""

from __future__ import annotations

from typing import Callable

from ..memory.public import PublicArray
from .bitonic import bitonic_sort
from .compare import SortKey, SortSpec
from .network import NetworkStats
from .routing import route_backward

#: Attribute-free representation of a tagged cell: (is_null, tag, value).
_TaggedCell = tuple


def compact_by_sorting(
    array: PublicArray,
    is_null: Callable,
    stats: NetworkStats | None = None,
) -> int:
    """Move non-null elements to the front via a bitonic sort; returns count.

    One linear pass tags every cell with ``(null_flag, original_position)``,
    the sort brings real elements (flag 0) to the front in original order,
    and a final pass strips the tags.
    """
    n = len(array)
    count = 0
    scratch = PublicArray(n, name=f"{array.name}#tag", tracer=array.tracer)
    for i in range(n):
        value = array.read(i)
        null = bool(is_null(value))
        count += not null
        scratch.write(i, (int(null), i, value))
    spec = SortSpec(
        SortKey(getter=lambda c: c[0], name="isnull"),
        SortKey(getter=lambda c: c[1], name="pos"),
    )
    bitonic_sort(scratch, spec, stats=stats)
    for i in range(n):
        array.write(i, scratch.read(i)[2])
    return count


def compact_by_routing(
    array: PublicArray,
    is_null: Callable,
    stats: NetworkStats | None = None,
) -> int:
    """Order-preserving compaction in `O(n log n)`; returns the count.

    A linear pass assigns each real element its rank (a running count kept in
    local memory) as the routing target, then the reverse routing network
    moves every element back to its rank.  Ranks are non-decreasing with
    position, which is exactly the precondition of
    :func:`~repro.obliv.routing.route_backward`.
    """
    n = len(array)
    rank = 0
    scratch = PublicArray(n, name=f"{array.name}#rank", tracer=array.tracer)
    for i in range(n):
        value = array.read(i)
        null = bool(is_null(value))
        # Null cells get target -1 so the router never moves them.
        scratch.write(i, (-1 if null else rank, value))
        rank += not null
    route_backward(scratch, lambda c: c[0], stats=stats)
    for i in range(n):
        array.write(i, scratch.read(i)[1])
    return rank


def oblivious_filter(
    array: PublicArray,
    keep: Callable,
    null_value=None,
    method: str = "routing",
    stats: NetworkStats | None = None,
) -> int:
    """Filter ``array`` in place: survivors first, ``null_value`` after.

    One linear pass replaces non-matching elements with ``null_value`` (every
    cell is rewritten, so the pass itself leaks nothing), then the chosen
    compaction moves survivors to the front.  Returns the survivor count,
    which the caller may publish — the same deliberate "reveal the output
    length" trade-off the paper makes for ``m`` (§3.2).
    """
    n = len(array)
    for i in range(n):
        value = array.read(i)
        array.write(i, value if keep(value) else null_value)
    compact = compact_by_routing if method == "routing" else compact_by_sorting
    return compact(array, lambda v: v is null_value or v == null_value, stats=stats)
