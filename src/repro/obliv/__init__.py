"""Oblivious building blocks: sorting networks, routing, compaction, PRPs.

Everything in this package has an input-independent public-memory access
pattern (for a fixed input length); these are the primitives from which the
join of :mod:`repro.core` is composed (§3.5, §5.2).
"""

from .bitonic import (
    bitonic_sort,
    bitonic_stages,
    comparison_count as bitonic_comparison_count,
    network_depth as bitonic_network_depth,
    next_power_of_two,
)
from .compact import compact_by_routing, compact_by_sorting, oblivious_filter
from .compare import (
    SortKey,
    SortSpec,
    attr_key,
    comparator_from_spec,
    identity_key,
    item_key,
    spec,
)
from .network import PAD, NetworkStats, apply_network, is_valid_schedule, network_size
from .oddeven import (
    comparison_count as oddeven_comparison_count,
    oddeven_sort,
    oddeven_stages,
)
from .permute import FeistelPRP
from .verify import (
    first_unsorted_witness,
    network_depth_profile,
    parallel_depth,
    sorts_all_zero_one_inputs,
)
from .routing import largest_hop, route_backward, route_forward

__all__ = [
    "bitonic_sort",
    "bitonic_stages",
    "bitonic_comparison_count",
    "bitonic_network_depth",
    "next_power_of_two",
    "compact_by_routing",
    "compact_by_sorting",
    "oblivious_filter",
    "SortKey",
    "SortSpec",
    "attr_key",
    "comparator_from_spec",
    "identity_key",
    "item_key",
    "spec",
    "PAD",
    "NetworkStats",
    "apply_network",
    "is_valid_schedule",
    "network_size",
    "oddeven_comparison_count",
    "oddeven_sort",
    "oddeven_stages",
    "FeistelPRP",
    "first_unsorted_witness",
    "network_depth_profile",
    "parallel_depth",
    "sorts_all_zero_one_inputs",
    "largest_hop",
    "route_backward",
    "route_forward",
]
