"""Comparator-network machinery shared by the sorting networks.

A sorting network is a data-independent schedule of compare-exchange
operations.  We represent a network as an iterable of *stages*, where each
stage is a list of disjoint ``(lo, hi)`` index pairs meaning "after this
operation, ``A[lo]`` must not exceed ``A[hi]`` under the comparator".
Directions (the ↑/↓ of bitonic phases) are already folded into the pair
orientation by the generators, so applying a network is direction-free.

:func:`apply_network` executes a schedule against a
:class:`~repro.memory.public.PublicArray` with the oblivious discipline of
§3.5: both cells are always read and always written back (a dummy write when
no swap happens), so the public trace is the same whether or not elements
move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..memory.public import PublicArray

#: Marker stored in cells added to pad an array to a power-of-two size.
#: The padded sorter orders it after every real element.
PAD = object()


@dataclass
class NetworkStats:
    """Operation counters for one or more network applications."""

    comparisons: int = 0
    swaps: int = 0
    stages: int = 0
    by_phase: dict = field(default_factory=dict)

    def add_phase(self, label: str, comparisons: int) -> None:
        self.by_phase[label] = self.by_phase.get(label, 0) + comparisons


def apply_network(
    array: PublicArray,
    stages: Iterable[list[tuple[int, int]]],
    compare: Callable,
    stats: NetworkStats | None = None,
    pad_aware: bool = False,
) -> None:
    """Run a compare-exchange schedule over ``array`` in place.

    ``compare(a, b)`` is a three-way comparator over real elements.  With
    ``pad_aware=True`` the :data:`PAD` sentinel is treated as larger than
    every real element (and equal to itself), which is how padded sorts keep
    the fill at the high end.
    """
    for stage in stages:
        if stats is not None:
            stats.stages += 1
        for lo, hi in stage:
            a = array.read(lo)
            b = array.read(hi)
            if pad_aware and (a is PAD or b is PAD):
                out_of_order = a is PAD and b is not PAD
            else:
                out_of_order = compare(a, b) > 0
            if stats is not None:
                stats.comparisons += 1
                if out_of_order:
                    stats.swaps += 1
            # Both cells are written regardless of the verdict: with
            # probabilistic encryption a dummy write-back is indistinguishable
            # from a swap (§3.5).
            if out_of_order:
                array.write(lo, b)
                array.write(hi, a)
            else:
                array.write(lo, a)
                array.write(hi, b)


def network_size(stages: Iterable[list[tuple[int, int]]]) -> tuple[int, int]:
    """(number of stages, number of comparators) of a schedule."""
    depth = 0
    comparators = 0
    for stage in stages:
        depth += 1
        comparators += len(stage)
    return depth, comparators


def is_valid_schedule(n: int, stages: Iterable[list[tuple[int, int]]]) -> bool:
    """Check structural sanity: in-range indices, disjoint pairs per stage."""
    for stage in stages:
        seen: set[int] = set()
        for lo, hi in stage:
            if not (0 <= lo < n and 0 <= hi < n) or lo == hi:
                return False
            if lo in seen or hi in seen:
                return False
            seen.add(lo)
            seen.add(hi)
    return True
