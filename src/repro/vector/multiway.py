"""Vectorised multi-way join cascade (§7) on the numpy engine.

Structurally identical to :func:`repro.core.multiway.oblivious_multiway_join`:
a left-deep fold of binary oblivious joins.  Each step projects the
accumulated row catalogue to two int columns — ``(join_key, row_handle)`` —
and runs them through :func:`repro.vector.join.vector_oblivious_join`, whose
bitonic/routing networks (built on ``vector_bitonic_sort``) are scheduled by
the public sizes alone.  Payload tuples never enter the oblivious operator;
they are gathered from the client-side catalogue by the returned handles,
exactly like the traced cascade, so the two engines produce bit-identical
rows in bit-identical order.

What the numpy engine reveals is the *primitive schedule*: which bitonic
networks and routing networks run, at which sizes.  That schedule — exposed
as :attr:`VectorMultiwayStats.schedule` — is a function of the input sizes
and, by default, the (deliberately revealed) intermediate sizes, the same
leakage profile as the traced cascade's access trace.  Under
``padding="bounded"|"worst_case"`` every step runs at its public bound
instead (:mod:`repro.core.padding`), so the schedule depends on input sizes
and bounds only; the stats then record the *padded* step sizes — the
adversary's view — while the returned ``intermediate_sizes`` stay the true,
client-side ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.multiway import (
    MultiwayResult,
    check_step_columns,
    encode_handles,
    validate_cascade,
)
from ..core.padding import check_padding, padded_cascade
from .join import VectorJoinStats, vector_oblivious_join


@dataclass
class VectorMultiwayStats:
    """Per-step vector-join stats for one cascade run."""

    step_stats: list[VectorJoinStats] = field(default_factory=list)
    intermediate_sizes: list[int] = field(default_factory=list)
    #: Per-step public output bounds of a padded run (empty when revealed) —
    #: the adversary-visible sizes, one per join step, so comparison tests
    #: can read the cascade's compounded padding straight off the stats.
    step_bounds: list[int] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(s.total_seconds for s in self.step_stats)

    @property
    def total_comparisons(self) -> int:
        return sum(s.total_comparisons for s in self.step_stats)

    @property
    def schedule(self) -> tuple[tuple[int, str, int], ...]:
        """The cascade's primitive schedule: ``(step, phase, comparators)``.

        Fully determined by the public sizes ``(n_0..n_k, m_1..m_k)`` — the
        obliviousness tests assert this tuple is identical across same-shape
        inputs with different data.
        """
        return tuple(
            (step, phase, count)
            for step, stats in enumerate(self.step_stats)
            for phase, count in sorted(stats.comparisons_by_phase.items())
        )


def vector_multiway_join(
    tables: list[list[tuple]],
    keys: list[tuple[int, int]],
    stats: VectorMultiwayStats | None = None,
    padding: str | None = None,
    bound=None,
) -> MultiwayResult:
    """Vectorised left-deep cascade; same contract as the traced version.

    ``tables`` / ``keys`` follow
    :func:`repro.core.multiway.oblivious_multiway_join`; rows may carry
    arbitrary payloads as long as the key columns are ints.  ``padding`` /
    ``bound`` select padded execution with the same semantics (and
    bit-identical compacted rows).
    """
    padding = check_padding(padding)
    validate_cascade(tables, keys)
    stats = stats if stats is not None else VectorMultiwayStats()

    if padding != "revealed":
        # Consume the compiled public plan's bounds (the compiler reuses
        # `cascade_bounds`, so the printed artifact and this execution
        # agree by construction; `tests/test_plan.py` pins it).
        from ..plan.compile import compile_multiway  # deferred: plan imports core

        plan = compile_multiway(
            [len(t) for t in tables], "vector", padding=padding, bound=bound
        )
        bounds = plan.shape("bounds")
        stats.step_bounds = list(bounds)

        def run_step(step, left_pairs, right_pairs, target):
            handles, join_stats = vector_oblivious_join(
                left_pairs, right_pairs, target_m=target
            )
            stats.step_stats.append(join_stats)
            stats.intermediate_sizes.append(join_stats.m)
            return [tuple(pair) for pair in handles.tolist()]

        rows, sizes = padded_cascade(tables, keys, bounds, run_step)
        return MultiwayResult(
            rows=rows, intermediate_sizes=sizes, padding=padding, bounds=bounds
        )

    accumulated = list(tables[0])
    for step, table in enumerate(tables[1:]):
        next_table = list(table)
        left_col, right_col = keys[step]
        check_step_columns(step, accumulated, next_table, left_col, right_col)
        handles, join_stats = vector_oblivious_join(
            encode_handles(accumulated, left_col),
            encode_handles(next_table, right_col),
        )
        stats.step_stats.append(join_stats)
        stats.intermediate_sizes.append(join_stats.m)
        accumulated = [
            accumulated[left_index] + tuple(next_table[right_index])
            for left_index, right_index in handles.tolist()
        ]
    return MultiwayResult(
        rows=accumulated, intermediate_sizes=list(stats.intermediate_sizes)
    )
