"""Vectorised oblivious grouped aggregation (§7) on the numpy engine.

Same semantics as :mod:`repro.core.aggregate` — aggregate ``T1 ⋈ T2`` per
join value without materialising the join — but expressed as whole-array
numpy operations:

1. one bitonic sort of the combined ``(j, tid, d)`` columns by ``(j, tid)``,
2. segmented reductions computing each group's ``(α1, α2, Σd, min, max)``
   accumulators (the vector analogue of the traced forward scan),
3. a scatter of each group's totals onto its boundary cell (the backward
   "mark" scan), and
4. one more bitonic sort by the null flag — compaction — after which the
   first ``g`` cells are the surviving groups.

Both bitonic networks run on ``n = n1 + n2`` cells regardless of data, so
the primitive schedule (exposed as :attr:`VectorAggregateStats.schedule`)
depends only on ``n``; the number of emitted groups ``g`` is the same
deliberate reveal as in the traced engine.  Outputs are bit-identical to
:func:`repro.core.aggregate.oblivious_join_aggregate` — same
:class:`~repro.core.aggregate.GroupAggregate` values in the same
(``j``-ascending) order — which the differential tests assert.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.aggregate import GroupAggregate
from ..errors import InputError
from .join import _as_columns, _group_ids
from .sort import vector_bitonic_sort

_INT = np.int64
_INT_MAX = np.iinfo(np.int64).max
_INT_MIN = np.iinfo(np.int64).min


@dataclass
class VectorAggregateStats:
    """Wall time and comparator counts of one vectorised aggregation."""

    seconds_by_phase: dict[str, float] = field(default_factory=dict)
    comparisons_by_phase: dict[str, int] = field(default_factory=dict)
    n: int = 0
    groups: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_phase.values())

    @property
    def total_comparisons(self) -> int:
        return sum(self.comparisons_by_phase.values())

    @property
    def schedule(self) -> tuple[tuple[str, int], ...]:
        """Primitive schedule ``(phase, comparators)`` — a function of n only."""
        return tuple(sorted(self.comparisons_by_phase.items()))


def _timed_sort(columns, keys, phase, stats):
    start = time.perf_counter()
    counter = [0]
    columns = vector_bitonic_sort(columns, keys, counter=counter)
    stats.seconds_by_phase[phase] = time.perf_counter() - start
    stats.comparisons_by_phase[phase] = counter[0]
    return columns


def _segment_accumulators(j, d, member):
    """Per-group ``(count, sum, min, max)`` over rows where ``member`` holds.

    ``j`` must be sorted; groups with no member rows get count 0 and the
    int64 min/max sentinels (those groups are filtered before emission).
    """
    starts = np.flatnonzero(np.concatenate([[True], j[1:] != j[:-1]]))
    count = np.add.reduceat(member.astype(_INT), starts)
    total = np.add.reduceat(np.where(member, d, 0), starts)
    minimum = np.minimum.reduceat(np.where(member, d, _INT_MAX), starts)
    maximum = np.maximum.reduceat(np.where(member, d, _INT_MIN), starts)
    return count, total, minimum, maximum


def _aggregate_columns(combined, keep_if, sort_phase, compact_phase, stats):
    """Shared sort → segment-reduce → scatter → compact pipeline.

    ``keep_if(c1, c2)`` decides (per group) which boundary cells survive
    compaction; returns the compacted column dict and the group count g.
    """
    n = len(combined["j"])
    stats.n = n
    # The traced engine sums in arbitrary-precision Python ints; int64 column
    # sums would silently wrap instead.  Refuse inputs where an n-term sum
    # could overflow rather than diverge from the bit-identical contract.
    limit = _INT_MAX // max(n, 1)
    if combined["d"].max(initial=0) > limit or combined["d"].min(initial=0) < -limit:
        raise InputError(
            f"data values exceed the vector engine's overflow-safe range "
            f"(|d| <= {limit} at n = {n}); use the traced engine"
        )
    combined = _timed_sort(
        combined, [("j", True), ("tid", True)], sort_phase, stats
    )

    start = time.perf_counter()
    j, d, tid = combined["j"], combined["d"], combined["tid"]
    gid = _group_ids(j)
    is_left = tid == 1
    c1, s1, mn1, mx1 = _segment_accumulators(j, d, is_left)
    c2, s2, mn2, mx2 = _segment_accumulators(j, d, ~is_left)

    # Scatter each group's totals onto its last (boundary) cell; every other
    # cell becomes a null that the compaction sort pushes to the back.
    boundary = np.concatenate([j[1:] != j[:-1], [True]])
    null = ~(boundary & keep_if(c1, c2)[gid])
    cells = {
        "null": null.astype(_INT),
        "j": j.copy(),
        "c1": c1[gid], "c2": c2[gid],
        "s1": s1[gid], "s2": s2[gid],
        "mn1": mn1[gid], "mx1": mx1[gid],
        "mn2": mn2[gid], "mx2": mx2[gid],
    }
    stats.seconds_by_phase["scan"] = time.perf_counter() - start

    cells = _timed_sort(cells, [("null", True), ("j", True)], compact_phase, stats)
    groups = int(n - null.sum())
    stats.groups = groups
    return cells, groups


def _emit(cells, groups, left_only: bool) -> list[GroupAggregate]:
    result = []
    for i in range(groups):
        result.append(
            GroupAggregate(
                j=int(cells["j"][i]),
                count1=int(cells["c1"][i]),
                count2=0 if left_only else int(cells["c2"][i]),
                sum_d1=int(cells["s1"][i]),
                sum_d2=0 if left_only else int(cells["s2"][i]),
                min_d1=int(cells["mn1"][i]),
                max_d1=int(cells["mx1"][i]),
                min_d2=0 if left_only else int(cells["mn2"][i]),
                max_d2=0 if left_only else int(cells["mx2"][i]),
            )
        )
    return result


def vector_join_aggregate(
    left,
    right,
    stats: VectorAggregateStats | None = None,
) -> list[GroupAggregate]:
    """Aggregate ``T1 ⋈ T2`` per join value without materialising the join.

    Vectorised counterpart of
    :func:`repro.core.aggregate.oblivious_join_aggregate`: one
    :class:`~repro.core.aggregate.GroupAggregate` per join value present in
    *both* tables, ordered by join value, in `O(n log^2 n)` independent of
    the would-be join size ``m``.
    """
    stats = stats if stats is not None else VectorAggregateStats()
    left_cols = _as_columns(left, tid=1)
    right_cols = _as_columns(right, tid=2)
    if len(left_cols["j"]) + len(right_cols["j"]) == 0:
        return []
    combined = {
        name: np.concatenate([left_cols[name], right_cols[name]])
        for name in ("j", "d", "tid")
    }
    cells, groups = _aggregate_columns(
        combined,
        keep_if=lambda c1, c2: (c1 > 0) & (c2 > 0),
        sort_phase="aggregate_sort",
        compact_phase="aggregate_compact",
        stats=stats,
    )
    return _emit(cells, groups, left_only=False)


def vector_group_by(
    table,
    stats: VectorAggregateStats | None = None,
) -> list[GroupAggregate]:
    """Single-table oblivious GROUP BY — vectorised counterpart of
    :func:`repro.core.aggregate.oblivious_group_by` (count/sum/min/max per
    join value, every group emitted)."""
    stats = stats if stats is not None else VectorAggregateStats()
    columns = _as_columns(table, tid=1)
    if len(columns["j"]) == 0:
        return []
    cells, groups = _aggregate_columns(
        columns,
        keep_if=lambda c1, c2: c1 > 0,
        sort_phase="groupby_sort",
        compact_phase="groupby_compact",
        stats=stats,
    )
    return _emit(cells, groups, left_only=True)
