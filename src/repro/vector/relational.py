"""Vectorised fast paths for the relational operators FILTER and ORDER BY.

The db layer's ``filter`` and ``order_by`` reduce to two index-level
primitives, both expressible as one bitonic sort on
:func:`~repro.vector.sort.vector_bitonic_sort`:

``filter``
    Order-preserving compaction of the survivor indices: sort
    ``(null_flag, position)`` ascending; the first ``count`` cells are the
    survivors in original order.  This is the paper's
    ``Bitonic-Sort<!= ∅ up>`` filter idiom, whole-array.  Only the survivor
    count is revealed — the same deliberate reveal the traced path makes.

``order_by``
    A *stable* sort permutation: sort the key columns with the original
    position appended as the final tiebreak key.  Appending the position
    makes the ordering total, so every engine — traced networks, numpy
    networks, per-shard sort + oblivious merge — lands on the identical
    permutation, which is what keeps the engines bit-identical on inputs
    with duplicate sort keys.

Both schedules depend only on the input length (and the revealed survivor
count), matching the vector engine's leakage profile.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import InputError
from .sort import vector_bitonic_sort

_INT = np.int64


def vector_filter_indices(mask: Sequence[bool]) -> list[int]:
    """Indices of the true cells of ``mask``, in order, via bitonic compaction."""
    flags = np.asarray(mask, dtype=bool)
    n = len(flags)
    if n == 0:
        return []
    columns = {
        "null": (~flags).astype(_INT),
        "pos": np.arange(n, dtype=_INT),
    }
    columns = vector_bitonic_sort(columns, [("null", True), ("pos", True)])
    count = int(flags.sum())
    return columns["pos"][:count].tolist()


def order_columns(
    columns: Sequence[tuple[Sequence[int], bool]], n: int
) -> tuple[dict[str, np.ndarray], list[tuple[str, bool]]]:
    """Build the struct-of-arrays table + keys of a stable order-by sort.

    Raises :class:`~repro.errors.InputError` when a key column does not fit
    int64 (e.g. string columns) — callers fall back to the traced path.
    """
    work: dict[str, np.ndarray] = {}
    keys: list[tuple[str, bool]] = []
    for index, (values, ascending) in enumerate(columns):
        name = f"k{index}"
        try:
            work[name] = np.asarray(values, dtype=_INT)
        except (ValueError, TypeError, OverflowError) as exc:
            raise InputError(
                "vector order_by requires int64-encodable sort columns"
            ) from exc
        keys.append((name, ascending))
    work["pos"] = np.arange(n, dtype=_INT)
    keys.append(("pos", True))
    return work, keys


def vector_order_permutation(
    columns: Sequence[tuple[Sequence[int], bool]], n: int
) -> list[int]:
    """The stable sort permutation of ``n`` rows under the given key columns.

    ``columns`` is a list of ``(values, ascending)`` pairs; the returned
    list maps output position to original row index.
    """
    if n <= 1:
        return list(range(n))
    work, keys = order_columns(columns, n)
    work = vector_bitonic_sort(work, keys)
    return work["pos"].tolist()
