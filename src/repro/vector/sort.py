"""Vectorised bitonic sorting over struct-of-arrays tables.

The traced engine in :mod:`repro.core` is faithful to the paper at the
granularity of single memory accesses, which caps pure-Python runs at a few
thousand rows.  This module re-implements the same bitonic network with
numpy whole-array operations: each network stage compares all of its
(disjoint) pairs at once.  The *schedule* of stages is still completely
input-independent — every stage touches fixed index sets derived only from
the array length — so the engine preserves the algorithm's structure and
cost shape while running ~10^3x faster; the test suite cross-checks its
output against the traced engine row for row.
"""

from __future__ import annotations

import numpy as np

from ..errors import InputError
from ..obliv.bitonic import next_power_of_two

#: Column holding the padding flag in padded sorts (sorts after real rows).
PAD_COLUMN = "_pad"

#: Sort key: (column name, ascending).
Key = tuple[str, bool]


def stage_pairs(n: int):
    """Yield ``(lo, hi)`` index-array pairs for each bitonic stage of size n.

    Orientation is already applied: after a stage, ``A[lo] <= A[hi]``
    pairwise sorts the whole array ascending once all stages ran.
    """
    if n & (n - 1):
        raise InputError(f"bitonic network size must be a power of two, got {n}")
    indices = np.arange(n)
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            partner = indices ^ j
            mask = partner > indices
            i = indices[mask]
            p = partner[mask]
            ascending = (i & k) == 0
            lo = np.where(ascending, i, p)
            hi = np.where(ascending, p, i)
            yield lo, hi
            j //= 2
        k *= 2


def lexicographic_greater(
    columns: dict[str, np.ndarray],
    keys: list[Key],
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Boolean mask: row ``lo[i]`` strictly follows row ``hi[i]`` under keys."""
    greater = np.zeros(len(lo), dtype=bool)
    equal = np.ones(len(lo), dtype=bool)
    for name, ascending in keys:
        col = columns[name]
        a = col[lo]
        b = col[hi]
        if ascending:
            stage_gt = a > b
        else:
            stage_gt = a < b
        greater |= equal & stage_gt
        equal &= a == b
    return greater


def vector_bitonic_sort(
    columns: dict[str, np.ndarray],
    keys: list[Key],
    counter: list | None = None,
) -> dict[str, np.ndarray]:
    """Sort a struct-of-arrays table by ``keys`` with the bitonic network.

    Returns a new column dict (padding inserted and stripped internally for
    non-power-of-two lengths).  When ``counter`` (a one-element list) is
    given, the number of executed comparator operations is added to it —
    feeding the same Table 3 accounting as the traced engine.
    """
    names = list(columns)
    n = len(columns[names[0]])
    if n <= 1:
        return {k: v.copy() for k, v in columns.items()}
    padded = next_power_of_two(n)
    work: dict[str, np.ndarray] = {}
    for name in names:
        col = np.asarray(columns[name])
        if padded == n:
            work[name] = col.copy()
        else:
            work[name] = np.concatenate([col, np.zeros(padded - n, dtype=col.dtype)])
    if padded != n:
        pad_flag = np.zeros(padded, dtype=np.int64)
        pad_flag[n:] = 1
        work[PAD_COLUMN] = pad_flag
        keys = [(PAD_COLUMN, True)] + list(keys)

    for lo, hi in stage_pairs(padded):
        swap = lexicographic_greater(work, keys, lo, hi)
        if counter is not None:
            counter[0] += len(lo)
        src = lo[swap]
        dst = hi[swap]
        for col in work.values():
            col[src], col[dst] = col[dst].copy(), col[src].copy()

    if padded != n:
        del work[PAD_COLUMN]
        return {name: work[name][:n] for name in names}
    return work


def is_sorted_by(columns: dict[str, np.ndarray], keys: list[Key]) -> bool:
    """Check whether the table is sorted by ``keys`` (test helper)."""
    n = len(next(iter(columns.values())))
    if n <= 1:
        return True
    lo = np.arange(n - 1)
    hi = lo + 1
    return not lexicographic_greater(columns, keys, lo, hi).any()
