"""Vectorised (numpy) engine: same algorithms, benchmark-scale throughput.

Covers every user-facing scenario of the traced reference engine — binary
join, multiway cascade, and grouped aggregation — with bit-identical
outputs; register-level access is replaced by whole-array primitives whose
schedule depends only on public sizes.
"""

from .aggregate import VectorAggregateStats, vector_group_by, vector_join_aggregate
from .baseline import vector_sort_merge_join
from .join import VectorJoinStats, vector_oblivious_join
from .multiway import VectorMultiwayStats, vector_multiway_join
from .sort import is_sorted_by, stage_pairs, vector_bitonic_sort

__all__ = [
    "VectorAggregateStats",
    "vector_group_by",
    "vector_join_aggregate",
    "vector_sort_merge_join",
    "VectorJoinStats",
    "vector_oblivious_join",
    "VectorMultiwayStats",
    "vector_multiway_join",
    "is_sorted_by",
    "stage_pairs",
    "vector_bitonic_sort",
]
