"""Vectorised (numpy) engine: same algorithm, benchmark-scale throughput."""

from .baseline import vector_sort_merge_join
from .join import VectorJoinStats, vector_oblivious_join
from .sort import is_sorted_by, stage_pairs, vector_bitonic_sort

__all__ = [
    "vector_sort_merge_join",
    "VectorJoinStats",
    "vector_oblivious_join",
    "is_sorted_by",
    "stage_pairs",
    "vector_bitonic_sort",
]
