"""The vectorised oblivious join pipeline (numpy struct-of-arrays engine).

Stage-for-stage the same algorithm as :mod:`repro.core`: augment with group
dimensions, expand both tables through sort + routing network, align S2, and
zip.  Each stage is expressed as whole-array numpy operations whose index
patterns depend only on (n1, n2, m); per-element decisions become boolean
masks.  Outputs are bit-identical to the traced engine (asserted in
``tests/test_vector_vs_traced.py``), which justifies benchmarking with this
engine while proving security claims on the traced one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.padding import (
    ANCHOR_KEY,
    DUMMY_HANDLE,
    check_anchor_headroom,
    check_payload_headroom,
    check_target_m,
    exceeds_bound,
)
from ..errors import InputError
from ..obliv.routing import largest_hop
from .sort import vector_bitonic_sort

_INT = np.int64


@dataclass
class VectorJoinStats:
    """Per-phase wall time and comparator counts of one vectorised join."""

    seconds_by_phase: dict[str, float] = field(default_factory=dict)
    comparisons_by_phase: dict[str, int] = field(default_factory=dict)
    m: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_phase.values())

    @property
    def total_comparisons(self) -> int:
        return sum(self.comparisons_by_phase.values())


def _as_columns(pairs, tid: int) -> dict[str, np.ndarray]:
    array = np.asarray(pairs, dtype=_INT)
    if array.size == 0:
        array = array.reshape(0, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise InputError("input tables must be sequences of (j, d) pairs")
    n = array.shape[0]
    return {
        "j": array[:, 0].copy(),
        "d": array[:, 1].copy(),
        "tid": np.full(n, tid, dtype=_INT),
    }


def _group_ids(j: np.ndarray) -> np.ndarray:
    """0-based group index per row of a j-sorted column."""
    n = len(j)
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.not_equal(j[1:], j[:-1], out=new_group[1:])
    return np.cumsum(new_group) - 1


def _route_forward(columns: dict[str, np.ndarray], m: int) -> None:
    """Vectorised Algorithm 3 routing: hop elements toward ``f`` targets.

    ``columns['f']`` holds 0-based targets (-1 for nulls).  Per phase, the
    element-wise hop decision ``target - position >= j`` matches the
    sequential inner loop exactly (the update rule in Theorem 1's proof is
    already element-wise).
    """
    if m <= 1:
        return
    size = len(columns["f"])
    positions = np.arange(size, dtype=_INT)
    hop = largest_hop(m)
    names = list(columns)
    while hop >= 1:
        targets = columns["f"]
        moving = (targets >= 0) & ((targets - positions) >= hop)
        src = np.flatnonzero(moving)
        dst = src + hop
        for name in names:
            col = columns[name]
            values = col[src].copy()
            col[src] = -1 if name == "f" else 0
            col[dst] = values
        hop //= 2


def _expand(
    columns: dict[str, np.ndarray],
    count_column: str,
    m: int,
    stats: VectorJoinStats,
    sort_phase: str,
    route_phase: str,
) -> dict[str, np.ndarray]:
    """Vectorised Algorithm 4: duplicate each row ``count_column`` times."""
    n = len(columns["j"])
    counts = columns[count_column]
    keep = counts > 0
    first_slot = np.cumsum(counts) - counts
    columns = dict(columns)
    columns["f"] = np.where(keep, first_slot, -1).astype(_INT)
    columns["_null"] = (~keep).astype(_INT)

    size = max(n, m)
    extended = {}
    for name, col in columns.items():
        ext = np.zeros(size, dtype=_INT)
        ext[:n] = col
        extended[name] = ext
    if size > n:
        extended["_null"][n:] = 1
        extended["f"][n:] = -1

    start = time.perf_counter()
    counter = [0]
    extended = vector_bitonic_sort(
        extended, [("_null", True), ("f", True)], counter=counter
    )
    stats.seconds_by_phase[sort_phase] = time.perf_counter() - start
    stats.comparisons_by_phase[sort_phase] = counter[0]

    start = time.perf_counter()
    _route_forward(extended, m)
    stats.seconds_by_phase[route_phase] = time.perf_counter() - start
    # The routing network compares one pair of cells per inner step; the
    # vectorised loop covers the same (size - hop) slots per phase.
    route_comparisons = 0
    hop = largest_hop(m)
    while hop >= 1:
        route_comparisons += max(size - hop, 0)
        hop //= 2
    stats.comparisons_by_phase[route_phase] = route_comparisons

    # Truncate to m cells and fill nulls downward from the last real row.
    result = {name: col[:m] for name, col in extended.items()}
    occupied = result["f"] >= 0
    source = np.where(occupied, np.arange(m, dtype=_INT), 0)
    np.maximum.accumulate(source, out=source)
    filled = {
        name: col[source]
        for name, col in result.items()
        if name not in ("_null", "f")
    }
    return filled


def _align(s2: dict[str, np.ndarray], m: int, stats: VectorJoinStats) -> dict[str, np.ndarray]:
    """Vectorised Algorithm 5: transpose each group block of S2."""
    gid = _group_ids(s2["j"])
    starts = np.flatnonzero(np.concatenate([[True], s2["j"][1:] != s2["j"][:-1]]))
    q = np.arange(m, dtype=_INT) - starts[gid]
    s2 = dict(s2)
    s2["ii"] = q // s2["a1"] + (q % s2["a1"]) * s2["a2"]

    start = time.perf_counter()
    counter = [0]
    s2 = vector_bitonic_sort(s2, [("j", True), ("ii", True)], counter=counter)
    stats.seconds_by_phase["align_sort"] = time.perf_counter() - start
    stats.comparisons_by_phase["align_sort"] = counter[0]
    return s2


def _append_anchor(columns: dict[str, np.ndarray], tid: int) -> dict[str, np.ndarray]:
    """One anchor row per table under padded execution (see core.padding)."""
    if len(columns["j"]):
        check_anchor_headroom((int(columns["j"].max()),))
        check_payload_headroom((int(columns["d"].min()),))
    return {
        "j": np.append(columns["j"], np.asarray([ANCHOR_KEY], dtype=_INT)),
        "d": np.append(columns["d"], np.asarray([DUMMY_HANDLE], dtype=_INT)),
        "tid": np.append(columns["tid"], np.asarray([tid], dtype=_INT)),
    }


def _augmented_tables(
    left, right, stats: VectorJoinStats, target_m: int | None
):
    """Algorithm 1's shared augment prefix: sorted, dimension-filled tables.

    Runs the two bitonic sorts and group-dimension fill that every
    expansion — whole-cell or segmented — starts from, recording the
    ``augment_sort1`` / ``fill_dimensions`` / ``augment_sort2`` phases into
    ``stats``.  Returns ``(table1, table2, m)`` where the tables are
    ``(tid, j, d)``-sorted with ``a1``/``a2`` columns and anchor dimensions
    already rewritten to the pad size under padded execution (so ``m`` is
    ``target_m`` exactly when it is given).  ``(None, None, 0)`` stands for
    the empty unpadded join.
    """
    left_cols = _as_columns(left, tid=1)
    right_cols = _as_columns(right, tid=2)
    if target_m is not None:
        target_m = check_target_m(target_m, len(left_cols["j"]), len(right_cols["j"]))
        left_cols = _append_anchor(left_cols, tid=1)
        right_cols = _append_anchor(right_cols, tid=2)
    n1 = len(left_cols["j"])
    n2 = len(right_cols["j"])
    if n1 + n2 == 0:
        return None, None, 0

    combined = {
        name: np.concatenate([left_cols[name], right_cols[name]])
        for name in ("j", "d", "tid")
    }

    start = time.perf_counter()
    counter = [0]
    combined = vector_bitonic_sort(combined, [("j", True), ("tid", True)], counter=counter)
    stats.seconds_by_phase["augment_sort1"] = time.perf_counter() - start
    stats.comparisons_by_phase["augment_sort1"] = counter[0]

    start = time.perf_counter()
    gid = _group_ids(combined["j"])
    group_count = int(gid[-1]) + 1
    count1 = np.bincount(gid, weights=(combined["tid"] == 1), minlength=group_count).astype(_INT)
    count2 = np.bincount(gid, weights=(combined["tid"] == 2), minlength=group_count).astype(_INT)
    combined["a1"] = count1[gid]
    combined["a2"] = count2[gid]
    m = int((count1 * count2).sum())
    stats.seconds_by_phase["fill_dimensions"] = time.perf_counter() - start
    stats.m = m

    start = time.perf_counter()
    counter = [0]
    combined = vector_bitonic_sort(
        combined, [("tid", True), ("j", True), ("d", True)], counter=counter
    )
    stats.seconds_by_phase["augment_sort2"] = time.perf_counter() - start
    stats.comparisons_by_phase["augment_sort2"] = counter[0]

    table1 = {name: col[:n1].copy() for name, col in combined.items() if name != "tid"}
    table2 = {name: col[n1:].copy() for name, col in combined.items() if name != "tid"}

    if target_m is not None:
        # The anchors hold the maximum key, so after the (tid, j, d) sort
        # they are each table's last row — a public position.  The anchor
        # group contributed 1*1 to m; rewriting its dimensions to the pad
        # size makes both expansions total exactly target_m (see
        # repro.core.padding — value writes don't shape the schedule).
        exceeds_bound(m - 1, target_m)
        pad = target_m - (m - 1)
        table1["a2"][-1] = pad
        table2["a1"][-1] = pad
        m = target_m
        stats.m = m

    return table1, table2, m


def vector_oblivious_join(
    left,
    right,
    stats: VectorJoinStats | None = None,
    with_keys: bool = False,
    target_m: int | None = None,
) -> tuple[np.ndarray, VectorJoinStats]:
    """Vectorised Algorithm 1; returns ``(pairs, stats)``.

    ``pairs`` is an ``(m, 2)`` int64 array of joined data values in the same
    order the traced engine produces: groups in ascending ``j`` order, each
    group's cross product row-major over its two d-sorted sides.  (That is
    *not* a lexicographic sort of the value triples — duplicate left
    payloads emit interleaved rows; see ``repro/shard/join.py``.)  With
    ``with_keys=True`` the array is ``(m, 3)``: ``(j, d1, d2)`` rows, which
    is what lets the sharded engine rank rows for its oblivious merge.

    ``target_m`` pads the output to that public bound exactly as the traced
    engine does (anchor rows, rewritten group dimensions — see
    :mod:`repro.core.padding`): real rows first, ``DUMMY_HANDLE`` rows
    after, and a primitive schedule that is a function of
    ``(n1, n2, target_m)`` only.
    """
    stats = stats or VectorJoinStats()
    width = 3 if with_keys else 2
    table1, table2, m = _augmented_tables(left, right, stats, target_m)
    if table1 is None or m == 0:
        return np.zeros((0, width), dtype=_INT), stats

    s1 = _expand(table1, "a2", m, stats, "expand1_sort", "expand1_route")
    s2 = _expand(table2, "a1", m, stats, "expand2_sort", "expand2_route")
    s2 = _align(s2, m, stats)

    start = time.perf_counter()
    if with_keys:
        pairs = np.stack([s1["j"], s1["d"], s2["d"]], axis=1)
    else:
        pairs = np.stack([s1["d"], s2["d"]], axis=1)
    stats.seconds_by_phase["zip"] = time.perf_counter() - start
    return pairs, stats


def vector_join_segment(
    left,
    right,
    target_m: int,
    lo: int,
    hi: int,
    stats: VectorJoinStats | None = None,
) -> tuple[np.ndarray, VectorJoinStats]:
    """One plan-bounded window ``[lo, hi)`` of the padded join's output.

    Returns the ``(hi - lo, 3)`` keyed slice bit-identical to
    ``vector_oblivious_join(..., with_keys=True, target_m=target_m)[lo:hi]``
    — the unit the sharded driver dispatches as one ``expand_segment``
    task.  The segment re-runs the cheap ``O((n1 + n2) log^2)`` augment
    prefix (both paths share the deterministic :func:`_augmented_tables`,
    so the sorted tables agree exactly) and then expands *only its window*:
    every per-row copy count is clipped to ``[lo, hi)`` before the
    ``O(seg log seg)`` distribute networks run, so the expensive part
    scales with the window, not with ``target_m``.

    Left side: row ``i`` occupies output ``[F_i, F_i + a2_i)`` where ``F``
    is the exclusive cumsum of ``a2`` — clip that interval.  Right side:
    the *aligned* S2 places the rank-``r`` row of a group starting at
    ``G`` (stride ``a2``, ``a1`` copies) at positions ``G + t*a2 + r`` —
    clip the ``t``-range, expand with per-copy helper columns, and one
    bitonic sort by the computed destinations (distinct by construction,
    a bijection onto the window) re-creates the aligned order at public
    size ``hi - lo``.  Every array shape and sort size is a function of
    ``(n1, n2, target_m, lo, hi)`` only.
    """
    stats = stats or VectorJoinStats()
    if target_m is None:
        raise InputError("segmented expansion requires a padded target_m")
    table1, table2, m = _augmented_tables(left, right, stats, target_m)
    if not (0 <= lo <= hi <= m):
        raise InputError(
            f"segment window [{lo}, {hi}) outside the padded output [0, {m})"
        )
    seg = hi - lo
    stats.m = seg
    if seg == 0:
        return np.zeros((0, 3), dtype=_INT), stats

    # S1: clip each left row's contiguous output interval to the window.
    first = np.cumsum(table1["a2"]) - table1["a2"]
    cols1 = dict(table1)
    cols1["c"] = np.maximum(
        np.minimum(first + table1["a2"], hi) - np.maximum(first, lo), 0
    ).astype(_INT)
    s1 = _expand(cols1, "c", seg, stats, "expand1_sort", "expand1_route")

    # S2: clip each right row's arithmetic progression of aligned slots.
    firsts = np.concatenate([[True], table2["j"][1:] != table2["j"][:-1]])
    gid = _group_ids(table2["j"])
    group_sizes = table2["a1"][firsts] * table2["a2"][firsts]
    gstart = (np.cumsum(group_sizes) - group_sizes)[gid]
    rank = np.arange(len(gid), dtype=_INT) - np.flatnonzero(firsts)[gid]
    base = gstart + rank
    a1, a2 = table2["a1"], table2["a2"]
    # ceil divisions via floor-div negation; a2 >= 1 for every table-2 row
    # (its own group contains it), so the progression stride is never 0.
    t_lo = np.maximum(-((base - lo) // a2), 0)
    t_hi = np.minimum(-((base - hi) // a2), a1)
    cols2 = dict(table2)
    cols2["c"] = np.maximum(t_hi - t_lo, 0).astype(_INT)
    cols2["_t0"] = t_lo.astype(_INT)
    cols2["_base"] = base.astype(_INT)
    cols2["_f0"] = (np.cumsum(cols2["c"]) - cols2["c"]).astype(_INT)
    s2 = _expand(cols2, "c", seg, stats, "expand2_sort", "expand2_route")

    copy = np.arange(seg, dtype=_INT) - s2["_f0"]
    s2["_dest"] = s2["_base"] + (s2["_t0"] + copy) * s2["a2"] - lo
    start = time.perf_counter()
    counter = [0]
    s2 = vector_bitonic_sort(s2, [("_dest", True)], counter=counter)
    stats.seconds_by_phase["align_sort"] = time.perf_counter() - start
    stats.comparisons_by_phase["align_sort"] = counter[0]

    start = time.perf_counter()
    keyed = np.stack([s1["j"], s1["d"], s2["d"]], axis=1)
    stats.seconds_by_phase["zip"] = time.perf_counter() - start
    return keyed, stats
