"""Vectorised insecure sort-merge join — Figure 8's baseline series.

A numpy implementation of the standard `O(m' log m')` join, used as the
"insecure sort-merge" line in the Figure 8 reproduction so both series run
on comparable substrates (vectorised numpy vs vectorised numpy).
"""

from __future__ import annotations

import numpy as np

from ..errors import InputError

_INT = np.int64


def vector_sort_merge_join(left, right) -> np.ndarray:
    """Non-oblivious equi-join; returns an ``(m, 2)`` array of (d1, d2)."""
    a = np.asarray(left, dtype=_INT)
    b = np.asarray(right, dtype=_INT)
    if a.size == 0 or b.size == 0:
        return np.zeros((0, 2), dtype=_INT)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != 2 or b.shape[1] != 2:
        raise InputError("input tables must be sequences of (j, d) pairs")

    a = a[np.lexsort((a[:, 1], a[:, 0]))]
    b = b[np.lexsort((b[:, 1], b[:, 0]))]
    ja, da = a[:, 0], a[:, 1]
    jb, db = b[:, 0], b[:, 1]

    # For each left row, the half-open run [lo, hi) of matching right rows.
    lo = np.searchsorted(jb, ja, side="left")
    hi = np.searchsorted(jb, ja, side="right")
    counts = hi - lo
    m = int(counts.sum())
    if m == 0:
        return np.zeros((0, 2), dtype=_INT)

    left_index = np.repeat(np.arange(len(ja)), counts)
    run_offsets = np.arange(m) - np.repeat(np.cumsum(counts) - counts, counts)
    right_index = np.repeat(lo, counts) + run_offsets
    return np.stack([da[left_index], db[right_index]], axis=1)
