"""Vectorised join-tree multiway joins (numpy struct-of-arrays engine).

Phase-for-phase the same algorithm as :mod:`repro.core.join_tree` — one
bottom-up ``multiplicity`` pass per edge, a ``finalize`` suffix-product
pass, one ``distribute_expand`` stab per node, and an ``align_concat`` —
with every pass a whole-array numpy operation whose index patterns depend
only on ``(sizes, tree, target)``.  Outputs are bit-identical to the
traced engine (pinned by ``tests/test_join_tree.py``).

The module is organised as kernels around a :class:`JoinTreeCatalogue`:

* :func:`edge_multiplicity` — one bottom-up edge pass (also the sharded
  engine's per-edge worker task);
* :func:`build_catalogue` — bottom-up + finalize + marker preparation,
  producing the per-node marker tables every slot window stabs against;
* :func:`expand_window` — the top-down stabs for a contiguous slot window
  ``[lo, hi)`` (also the sharded engine's window worker task): each
  window's cost is ``O((win + n) log^2)`` per node and its output is
  independent of every other window, which is what lets the sharded
  driver fan the slot space out as plan-bounded tasks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.join_tree import (
    JoinTreeResult,
    child_edge_indices,
    join_tree_bound,
    topdown_edge_order,
    validate_join_tree_tables,
)
from ..core.padding import DUMMY_HANDLE, check_padding, exceeds_bound
from ..errors import InputError
from .sort import vector_bitonic_sort

_INT = np.int64

#: Sort keys of every stab: coordinate, marker-before-query tag, position.
_STAB_KEYS = [("x", True), ("t", True), ("i", True)]
_UNSTAB_KEYS = [("t", True), ("i", True)]


@dataclass
class VectorJoinTreeStats:
    """Per-phase wall time and comparator counts of one join-tree run."""

    seconds_by_phase: dict[str, float] = field(default_factory=dict)
    comparisons_by_phase: dict[str, int] = field(default_factory=dict)
    m: int = 0
    target: int | None = None

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_phase.values())

    @property
    def total_comparisons(self) -> int:
        return sum(self.comparisons_by_phase.values())


def _table_array(table, width: int) -> np.ndarray:
    array = np.asarray([tuple(row) for row in table], dtype=_INT)
    if array.size == 0:
        array = array.reshape(0, width)
    if array.ndim != 2:
        raise InputError("join-tree tables must be sequences of row tuples")
    return array


def edge_multiplicity(
    parent_key: np.ndarray,
    child_key: np.ndarray,
    child_alpha: np.ndarray,
    band: int,
    counter: list,
) -> tuple[np.ndarray, np.ndarray]:
    """One bottom-up edge pass: per parent row, ``(beta, start)``.

    ``beta`` is the total child ``alpha``-mass matching the parent's key
    within ``band``; ``start`` the exclusive prefix mass strictly below the
    band — the base coordinate of the matching run in the child's
    ``(key, index)``-sorted mass space.  Three oblivious sorts, all of
    public size: the child prefix sort at ``n_c`` and the combined
    lo/hi stabbing pass at ``2 * n_v + n_c``.
    """
    n_v = len(parent_key)
    n_c = len(child_key)
    sc = vector_bitonic_sort(
        {
            "x": np.asarray(child_key, dtype=_INT),
            "i": np.arange(n_c, dtype=_INT),
            "a": np.asarray(child_alpha, dtype=_INT),
        },
        [("x", True), ("i", True)],
        counter=counter,
    )
    acc = np.cumsum(sc["a"], dtype=_INT)
    parent_key = np.asarray(parent_key, dtype=_INT)
    combined = {
        "x": np.concatenate([parent_key - band, sc["x"], parent_key + band]),
        "t": np.concatenate(
            [
                np.zeros(n_v, dtype=_INT),
                np.ones(n_c, dtype=_INT),
                np.full(n_v, 2, dtype=_INT),
            ]
        ),
        "i": np.concatenate(
            [
                np.arange(n_v, dtype=_INT),
                np.arange(n_c, dtype=_INT),
                np.arange(n_v, dtype=_INT),
            ]
        ),
        "acc": np.concatenate(
            [np.zeros(n_v, dtype=_INT), acc, np.zeros(n_v, dtype=_INT)]
        ),
    }
    combined = vector_bitonic_sort(combined, _STAB_KEYS, counter=counter)
    size = 2 * n_v + n_c
    src = np.where(combined["t"] == 1, np.arange(size, dtype=_INT), -1)
    np.maximum.accumulate(src, out=src)
    filled = np.where(src >= 0, combined["acc"][np.maximum(src, 0)], 0)
    combined["acc"] = filled.astype(_INT)
    combined = vector_bitonic_sort(combined, _UNSTAB_KEYS, counter=counter)
    lo = combined["acc"][:n_v]
    hi = combined["acc"][size - n_v :]
    return (hi - lo).astype(_INT), lo.astype(_INT)


def stab_markers(
    markers: dict[str, np.ndarray],
    coords: np.ndarray,
    defaults: dict[str, int],
    counter: list,
) -> dict[str, np.ndarray]:
    """Fill each query coordinate with the last marker at or before it.

    ``markers`` carries the coordinate column ``"x"`` (ascending) plus
    arbitrary payload columns; queries whose coordinate precedes every
    marker (the dummy ``-1`` convention) receive ``defaults``.  Two
    oblivious sorts of public size ``len(markers) + len(coords)``; returns
    the payload columns in query order.
    """
    n = len(markers["x"])
    q = len(coords)
    names = [name for name in markers if name != "x"]
    combined = {
        "x": np.concatenate([markers["x"], np.asarray(coords, dtype=_INT)]),
        "t": np.concatenate([np.zeros(n, dtype=_INT), np.ones(q, dtype=_INT)]),
        "i": np.concatenate(
            [np.arange(n, dtype=_INT), np.arange(q, dtype=_INT)]
        ),
    }
    for name in names:
        fill = defaults.get(name, 0)
        combined[name] = np.concatenate(
            [np.asarray(markers[name], dtype=_INT), np.full(q, fill, dtype=_INT)]
        )
    combined = vector_bitonic_sort(combined, _STAB_KEYS, counter=counter)
    src = np.where(combined["t"] == 0, np.arange(n + q, dtype=_INT), -1)
    np.maximum.accumulate(src, out=src)
    has = src >= 0
    idx = np.maximum(src, 0)
    for name in names:
        fill = defaults.get(name, 0)
        combined[name] = np.where(has, combined[name][idx], fill).astype(_INT)
    combined = vector_bitonic_sort(combined, _UNSTAB_KEYS, counter=counter)
    return {name: combined[name][n:].copy() for name in names}


@dataclass
class JoinTreeCatalogue:
    """Everything the top-down stabs need, per node — the shippable unit.

    ``root_markers`` / ``edge_markers[e]`` are marker tables (coordinate
    column ``"x"``, handle ``"h"``, start ``"a"``, data columns
    ``"d0"..``, and per child edge ``j`` of the marked node the
    ``"b{j}"/"s{j}"/"q{j}"`` decomposition params).  A window task stabs
    slot coordinates against these tables and nothing else, so the
    catalogue is exactly the state the sharded driver broadcasts.
    """

    sizes: tuple[int, ...]
    widths: tuple[int, ...]
    edges: tuple
    order: tuple[int, ...]
    children: dict[int, tuple[int, ...]]
    root_markers: dict[str, np.ndarray]
    edge_markers: list
    m: int
    target: int


def _payload_columns(
    node: int,
    rows: np.ndarray,
    widths,
    children,
    edge_bs: dict,
) -> dict[str, np.ndarray]:
    """A node's marker payload in input order: data + (beta, start, Q)."""
    n = len(rows)
    cols: dict[str, np.ndarray] = {
        f"d{c}": rows[:, c].copy() for c in range(widths[node])
    }
    kids = children.get(node, ())
    suffix = np.ones(n, dtype=_INT)
    weights = [None] * len(kids)
    for j in range(len(kids) - 1, -1, -1):
        weights[j] = suffix
        suffix = suffix * edge_bs[kids[j]][0]
    for j, e in enumerate(kids):
        beta, start = edge_bs[e]
        cols[f"b{j}"] = beta
        cols[f"s{j}"] = start
        cols[f"q{j}"] = weights[j]
    return cols


def _marker_defaults(node: int, widths, children) -> dict[str, int]:
    defaults = {"h": DUMMY_HANDLE, "a": 0}
    for c in range(widths[node]):
        defaults[f"d{c}"] = DUMMY_HANDLE
    for j in range(len(children.get(node, ()))):
        defaults[f"b{j}"] = 0
        defaults[f"s{j}"] = 0
        defaults[f"q{j}"] = 0
    return defaults


@dataclass
class JoinTreeInputs:
    """Validated, array-backed inputs shared by the inline/sharded drivers."""

    arrays: list
    widths: tuple[int, ...]
    edges: tuple
    sizes: tuple[int, ...]
    children: dict[int, tuple[int, ...]]
    order: tuple[int, ...]


def prepare_tables(tables, edges, padding: str) -> JoinTreeInputs:
    """Validate and load a join-tree query into numpy arrays."""
    tables = [[tuple(row) for row in table] for table in tables]
    widths, edges = validate_join_tree_tables(tables, edges, padding)
    sizes = tuple(len(table) for table in tables)
    return JoinTreeInputs(
        arrays=[_table_array(table, widths[v]) for v, table in enumerate(tables)],
        widths=tuple(widths),
        edges=edges,
        sizes=sizes,
        children=child_edge_indices(edges),
        order=topdown_edge_order(edges, len(tables)),
    )


def build_catalogue(
    tables,
    edges,
    padding: str | None = None,
    bound=None,
    stats: VectorJoinTreeStats | None = None,
) -> JoinTreeCatalogue:
    """Bottom-up + finalize + marker preparation; returns the catalogue."""
    stats = stats if stats is not None else VectorJoinTreeStats()
    padding = check_padding(padding)
    inputs = prepare_tables(tables, edges, padding)

    start_time = time.perf_counter()
    counter = [0]
    alpha = [np.ones(n, dtype=_INT) for n in inputs.sizes]
    edge_bs: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for e in reversed(inputs.order):
        edge = inputs.edges[e]
        beta, start = edge_multiplicity(
            inputs.arrays[edge.parent][:, edge.parent_col],
            inputs.arrays[edge.child][:, edge.child_col],
            alpha[edge.child],
            edge.band,
            counter,
        )
        edge_bs[e] = (beta, start)
        alpha[edge.parent] = alpha[edge.parent] * beta
    stats.seconds_by_phase["multiplicity"] = time.perf_counter() - start_time
    stats.comparisons_by_phase["multiplicity"] = counter[0]

    m = int(alpha[0].sum())
    target = join_tree_bound(inputs.sizes, padding, bound)
    if target is None:
        target = m
    else:
        exceeds_bound(m, target)
    stats.m = m
    stats.target = target

    start_time = time.perf_counter()
    counter = [0]
    catalogue = finalize_catalogue(
        inputs, alpha, edge_bs, m, target, padding != "revealed", counter
    )
    stats.seconds_by_phase["finalize"] = time.perf_counter() - start_time
    stats.comparisons_by_phase["finalize"] = counter[0]
    return catalogue


def finalize_catalogue(
    inputs: JoinTreeInputs,
    alpha,
    edge_bs: dict,
    m: int,
    target: int,
    padded: bool,
    counter: list,
) -> JoinTreeCatalogue:
    """Finalize + marker prep from completed bottom-up results.

    The root's markers sit at the exclusive prefix of ``alpha`` in input
    order (plus the anchor owning ``[m, target)`` under padded modes); each
    edge's markers at the exclusive prefix of alpha-mass in
    ``(key, index)``-sorted child order.  The sharded driver calls this
    directly after running the bottom-up edge passes as executor tasks.
    """
    arrays, widths, edges = inputs.arrays, inputs.widths, inputs.edges
    sizes, children, order = inputs.sizes, inputs.children, inputs.order
    payload0 = _payload_columns(0, arrays[0], widths, children, edge_bs)
    prefix = np.cumsum(alpha[0], dtype=_INT) - alpha[0]
    root_markers = {
        "x": prefix.copy(),
        "h": np.arange(sizes[0], dtype=_INT),
        "a": prefix.copy(),
    }
    root_markers.update(payload0)
    if padded:
        anchor = _marker_defaults(0, widths, children)
        anchor["a"] = m
        root_markers = {
            name: np.append(
                col, np.asarray([m if name == "x" else anchor[name]], dtype=_INT)
            )
            for name, col in root_markers.items()
        }

    edge_markers: list = [None] * len(edges)
    for e in order:
        edge = edges[e]
        c = edge.child
        payload = _payload_columns(c, arrays[c], widths, children, edge_bs)
        prep = {
            "x": arrays[c][:, edge.child_col].copy(),
            "i": np.arange(sizes[c], dtype=_INT),
            "al": alpha[c].copy(),
        }
        prep.update(payload)
        prep = vector_bitonic_sort(prep, [("x", True), ("i", True)], counter=counter)
        mass = np.cumsum(prep["al"], dtype=_INT) - prep["al"]
        markers = {"x": mass.copy(), "h": prep["i"].copy(), "a": mass.copy()}
        for name in payload:
            markers[name] = prep[name]
        edge_markers[e] = markers

    return JoinTreeCatalogue(
        sizes=sizes,
        widths=tuple(widths),
        edges=edges,
        order=order,
        children=children,
        root_markers=root_markers,
        edge_markers=edge_markers,
        m=m,
        target=target,
    )


def expand_window(
    catalogue: JoinTreeCatalogue, lo: int, hi: int, counter: list
) -> list[dict[str, np.ndarray]]:
    """Top-down stabs for slots ``[lo, hi)``; per-node slot columns.

    Pure in ``(catalogue, lo, hi)`` and independent of every other window
    — the property that makes windows valid executor tasks whose results
    can arrive in any order.  Returns one column dict per node holding
    ``"h"`` (matched row handle, :data:`DUMMY_HANDLE` on pad slots),
    ``"sg"`` (the slot's residual index inside that row's block) and the
    node's data columns ``"d0"..``.
    """
    if not 0 <= lo <= hi <= catalogue.target:
        raise InputError(
            f"join-tree window [{lo}, {hi}) outside the slot space "
            f"[0, {catalogue.target})"
        )
    widths, children = catalogue.widths, catalogue.children
    slots: list = [None] * len(catalogue.sizes)
    coords = np.arange(lo, hi, dtype=_INT)
    stabbed = stab_markers(
        catalogue.root_markers,
        coords,
        _marker_defaults(0, widths, children),
        counter,
    )
    real = stabbed["h"] != DUMMY_HANDLE
    stabbed["sg"] = np.where(real, coords - stabbed["a"], 0).astype(_INT)
    slots[0] = stabbed
    for e in catalogue.order:
        edge = catalogue.edges[e]
        parent = slots[edge.parent]
        j = children[edge.parent].index(e)
        beta = parent[f"b{j}"]
        weight = parent[f"q{j}"]
        digit = (parent["sg"] // np.maximum(weight, 1)) % np.maximum(beta, 1)
        real = parent["h"] != DUMMY_HANDLE
        coords = np.where(real, parent[f"s{j}"] + digit, -1).astype(_INT)
        stabbed = stab_markers(
            catalogue.edge_markers[e],
            coords,
            _marker_defaults(edge.child, widths, children),
            counter,
        )
        real = stabbed["h"] != DUMMY_HANDLE
        stabbed["sg"] = np.where(real, coords - stabbed["a"], 0).astype(_INT)
        slots[edge.child] = stabbed
    return slots


def window_rows(catalogue: JoinTreeCatalogue, slots) -> np.ndarray:
    """Align-concat: zip per-node slot data columns into output rows."""
    columns = []
    for v in range(len(catalogue.sizes)):
        for c in range(catalogue.widths[v]):
            columns.append(slots[v][f"d{c}"])
    if not columns:
        return np.zeros((0, 0), dtype=_INT)
    return np.stack(columns, axis=1)


def vector_join_tree(
    tables,
    edges,
    padding: str | None = None,
    bound=None,
    stats: VectorJoinTreeStats | None = None,
) -> tuple[JoinTreeResult, VectorJoinTreeStats]:
    """The vectorised join tree; returns ``(result, stats)``.

    ``result.rows`` are bit-identical (values and order) to
    :func:`repro.core.join_tree.oblivious_join_tree`'s.
    """
    stats = stats if stats is not None else VectorJoinTreeStats()
    padding = check_padding(padding)
    catalogue = build_catalogue(tables, edges, padding, bound, stats)

    start_time = time.perf_counter()
    counter = [0]
    slots = expand_window(catalogue, 0, catalogue.target, counter)
    stats.seconds_by_phase["distribute_expand"] = time.perf_counter() - start_time
    stats.comparisons_by_phase["distribute_expand"] = counter[0]

    start_time = time.perf_counter()
    padded = window_rows(catalogue, slots)
    rows = [tuple(row) for row in padded[: catalogue.m].tolist()]
    stats.seconds_by_phase["align_concat"] = time.perf_counter() - start_time
    result = JoinTreeResult(
        rows=rows,
        m=catalogue.m,
        padding=padding,
        target=catalogue.target if padding != "revealed" else None,
        sizes=catalogue.sizes,
    )
    return result, stats
