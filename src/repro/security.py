"""The obliviousness taxonomy of §3.2 — levels, settings, attacks (Table 2).

Three nested levels of obliviousness:

* **Level I** — public-memory accesses are oblivious, but the program uses a
  non-constant amount of local memory non-obliviously.
* **Level II** — additionally, local memory is bounded by a constant (the
  paper's own algorithm; "doubly-oblivious" in Oblix's terminology).
* **Level III** — the full control flow, down to individual instructions, is
  input-independent: the program is circuit-like.

Table 2 maps each level to the side-channel attacks it still admits in each
deployment setting; :func:`vulnerability_profile` reproduces that matrix and
:func:`classify` assigns a level from a program's declared properties.

Orthogonal to the *levels* (how faithfully a trace hides data) is the
question of *what public values the trace is allowed to depend on* — the
leakage profile.  :data:`LEAKAGE_PROFILES` / :func:`leakage_profile` give
the machine-readable answer per engine and padding mode; the prose version,
with the threat model and the residual leaks spelled out, is the
first-class guide in ``docs/leakage.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Level(Enum):
    """The three degrees of obliviousness of §3.2."""

    I = 1
    II = 2
    III = 3

    def __str__(self) -> str:
        return {1: "I", 2: "II", 3: "III"}[self.value]


class Setting(Enum):
    """Deployment settings for computing on encrypted data (§2)."""

    EXTERNAL_MEMORY = "Ext. Memory"
    SECURE_COPROCESSOR = "Secure Coprocessor"
    TEE = "TEE (enclave)"
    SECURE_COMPUTATION = "Secure Computation"
    FHE = "FHE"


class Attack(Enum):
    """Side-channel attack classes named in Table 2."""

    TIMING = "t"
    PAGE_DATA = "pd"
    PAGE_CODE = "pc"
    CACHE_TIMING = "c"
    BRANCHING = "b"


#: Table 2's lower portion: residual attack surface per (setting, level).
#: ``None`` marks settings where the level distinction is not applicable.
_VULNERABILITIES: dict[Setting, dict[Level, tuple[Attack, ...] | None]] = {
    Setting.EXTERNAL_MEMORY: {
        Level.I: (Attack.TIMING,),
        Level.II: (Attack.TIMING,),
        Level.III: (),
    },
    Setting.SECURE_COPROCESSOR: {
        Level.I: (Attack.TIMING,),
        Level.II: (Attack.TIMING,),
        Level.III: (),
    },
    Setting.TEE: {
        Level.I: (Attack.TIMING, Attack.PAGE_DATA, Attack.PAGE_CODE,
                  Attack.CACHE_TIMING, Attack.BRANCHING),
        Level.II: (Attack.TIMING, Attack.PAGE_CODE, Attack.CACHE_TIMING,
                   Attack.BRANCHING),
        Level.III: (),
    },
    Setting.SECURE_COMPUTATION: {Level.I: None, Level.II: None, Level.III: ()},
    Setting.FHE: {Level.I: None, Level.II: None, Level.III: ()},
}


@dataclass(frozen=True)
class ProgramProfile:
    """Security-relevant properties a program declares about itself."""

    name: str
    oblivious_public_accesses: bool
    constant_local_memory: bool
    circuit_like: bool

    def level(self) -> Level | None:
        return classify(self)


def classify(profile: ProgramProfile) -> Level | None:
    """Assign the §3.2 level implied by a program's properties.

    Returns ``None`` when the program is not oblivious at all (e.g. the
    standard sort-merge join).
    """
    if not profile.oblivious_public_accesses:
        return None
    if not profile.constant_local_memory:
        return Level.I
    if not profile.circuit_like:
        return Level.II
    return Level.III


def vulnerability_profile(setting: Setting, level: Level) -> tuple[Attack, ...] | None:
    """Residual attacks for a level-``level`` program in ``setting``.

    ``None`` means "not applicable" (local-memory side channels have no
    analogue in circuit-based settings below level III).
    """
    return _VULNERABILITIES[setting][level]


def has_constant_local_memory(level: Level) -> bool:
    """Upper portion of Table 2, first row."""
    return level in (Level.II, Level.III)


def is_circuit_like(level: Level) -> bool:
    """Upper portion of Table 2, second row."""
    return level is Level.III


#: Profiles of the algorithms implemented in this repository.
KNOWN_PROFILES: dict[str, ProgramProfile] = {
    "sort_merge_join": ProgramProfile(
        "sort_merge_join",
        oblivious_public_accesses=False,
        constant_local_memory=True,
        circuit_like=False,
    ),
    "oblivious_join": ProgramProfile(
        "oblivious_join",
        oblivious_public_accesses=True,
        constant_local_memory=True,
        circuit_like=False,
    ),
    "oblivious_join_transformed": ProgramProfile(
        "oblivious_join_transformed",
        oblivious_public_accesses=True,
        constant_local_memory=True,
        circuit_like=True,
    ),
    "nested_loop_join": ProgramProfile(
        "nested_loop_join",
        oblivious_public_accesses=True,
        constant_local_memory=True,
        circuit_like=False,
    ),
    "opaque_pkfk_join": ProgramProfile(
        "opaque_pkfk_join",
        oblivious_public_accesses=True,
        constant_local_memory=True,
        circuit_like=False,
    ),
    "goodrich_external_memory": ProgramProfile(
        "goodrich_external_memory",
        oblivious_public_accesses=True,
        constant_local_memory=False,
        circuit_like=False,
    ),
}


#: What each engine's adversary view is a function of, per padding mode —
#: the machine-readable twin of the table in ``docs/leakage.md`` (which
#: also defines each symbol).  Symbols: ``n1``/``n2``/``n_i`` input sizes,
#: ``m`` join output size, ``step_sizes`` multiway intermediate sizes,
#: ``bound``/``bounds`` the public padding bounds, ``k`` shard count,
#: ``partition_plan`` the (n, k)-determined shard layout, ``m_ij_grid``
#: per-task output sizes, ``partial_group_counts`` per-shard distinct-key
#: counts, ``filter_block_counts`` the sharded FILTER's per-shard survivor
#: counts, ``g`` the final group count, ``m_final`` the compacted final
#: output size (always revealed — the paper's model accepts it).
#: ``m_final`` and ``g`` (final output / group count after compaction) are
#: revealed in *every* mode — the paper's model accepts that — so every
#: profile lists them.  Store-backed (out-of-core) inputs add
#: ``block_rows`` (the store's fixed rows-per-block layout constant) and
#: ``block_ids`` (which block ids each shard faults in — the
#: block-aligned partition plan, a pure function of
#: ``(n, k, block_rows)``); see the block-access-pattern section of
#: ``docs/leakage.md``.
LEAKAGE_PROFILES: dict[tuple[str, str], tuple[str, ...]] = {
    ("traced", "revealed"): (
        "n1", "n2", "m", "step_sizes", "tree", "m_final", "g",
    ),
    ("traced", "bounded"): (
        "n1", "n2", "bound", "bounds", "tree", "target", "m_final", "g",
    ),
    ("traced", "worst_case"): ("n1", "n2", "tree", "m_final", "g"),
    ("vector", "revealed"): (
        "n1", "n2", "m", "step_sizes", "tree", "m_final", "g",
    ),
    ("vector", "bounded"): (
        "n1", "n2", "bound", "bounds", "tree", "target", "m_final", "g",
    ),
    ("vector", "worst_case"): ("n1", "n2", "tree", "m_final", "g"),
    ("sharded", "revealed"): (
        "n1", "n2", "k", "partition_plan", "m", "step_sizes",
        "m_ij_grid", "partial_group_counts", "filter_block_counts",
        "tree", "windows", "block_rows", "block_ids", "m_final", "g",
    ),
    ("sharded", "bounded"): (
        "n1", "n2", "k", "partition_plan", "bound", "bounds",
        "tree", "target", "windows", "block_rows", "block_ids",
        "m_final", "g",
    ),
    ("sharded", "worst_case"): (
        "n1", "n2", "k", "partition_plan", "tree", "windows",
        "block_rows", "block_ids", "m_final", "g",
    ),
}


#: What serving a *series* of queries from one warm process
#: (``repro serve``) reveals beyond the per-query engine profiles above.
#: Every symbol is derived from values the single-query profiles already
#: treat as public — the caches key on public shapes by construction —
#: but repetition makes their *reuse* observable: ``query_shape`` the
#: per-query (op, table identities, shape) tuple behind every cache key,
#: ``shape_reuse`` the fact that two queries shared plan/encoding cache
#: entries (equal public shapes / same table version), ``warm_timing``
#: the cold-vs-warm latency difference a timing observer can use to infer
#: that reuse, and ``queue_depth`` the admission queue length reported in
#: (and observable through) per-query stats under concurrency.  The prose
#: twin is the "What repetition reveals" section of ``docs/leakage.md``;
#: a test keeps the two in sync.
SERVICE_LEAKAGE: tuple[str, ...] = (
    "query_shape",
    "shape_reuse",
    "warm_timing",
    "queue_depth",
)


#: What an observer of the *untrusted block store* (the disk under a
#: :class:`~repro.store.FileStore`, or the bus it travels) learns when a
#: store-backed query runs.  Every symbol is a pure function of values
#: the engine profiles above already treat as public: ``block_bytes`` the
#: store's fixed block size (a layout constant), ``num_blocks`` each
#: column's block count ``ceil(n / block_rows)`` (a function of the
#: public ``n``), ``block_access_order`` the sequence of ``(column,
#: block id)`` reads — exactly the plan's block-aligned partition, a
#: pure function of ``(n, k, block_rows)`` — and ``write_pattern`` which
#: slots were rewritten (each rewrite under a fresh nonce, so two
#: ciphertexts of one block are unlinkable; the *fact* of the write is
#: visible).  Cache hit/miss/eviction and residency counters never leave
#: trusted memory — they are local diagnostics, not part of this view.
#: The prose twin is the block-access-pattern section of
#: ``docs/leakage.md``; a test keeps the two in sync.
STORE_LEAKAGE: tuple[str, ...] = (
    "block_bytes",
    "num_blocks",
    "block_access_order",
    "write_pattern",
)


def leakage_profile(engine: str, padding: str = "revealed") -> tuple[str, ...]:
    """Public values the (engine, padding) adversary view may depend on.

    The authoritative prose table — including what each symbol means, the
    abort leak of ``"bounded"`` mode, and the reveals padding does *not*
    remove (e.g. the sharded filter's per-shard survivor counts) — lives in
    ``docs/leakage.md``; keep the two in sync (a test cross-checks them).
    """
    try:
        return LEAKAGE_PROFILES[(engine, padding)]
    except KeyError:
        raise KeyError(
            f"no leakage profile for engine={engine!r}, padding={padding!r}; "
            f"known: {sorted(LEAKAGE_PROFILES)}"
        ) from None


def render_table2() -> str:
    """Table 2 as printable text (used by the bench that regenerates it)."""
    lines = []
    header = f"{'Property/Setting':28s}" + "".join(f"{str(l):>6s}" for l in Level)
    lines.append(header)
    lines.append("-" * len(header))
    lines.append(
        f"{'Constant local memory':28s}"
        + "".join(f"{'yes' if has_constant_local_memory(l) else 'x':>6s}" for l in Level)
    )
    lines.append(
        f"{'Circuit-like':28s}"
        + "".join(f"{'yes' if is_circuit_like(l) else 'x':>6s}" for l in Level)
    )
    for setting in Setting:
        cells = []
        for level in Level:
            attacks = vulnerability_profile(setting, level)
            if attacks is None:
                cells.append("n/a")
            elif not attacks:
                cells.append("ok")
            else:
                cells.append(",".join(a.value for a in attacks))
        lines.append(f"{setting.value:28s}" + "".join(f"{c:>6s}" for c in cells))
    return "\n".join(lines)
